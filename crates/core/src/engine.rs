//! The end-to-end LoopLynx engine.
//!
//! Two complementary facilities:
//!
//! * [`LoopLynx`] — the *timing* engine: simulates full prefill+decode
//!   generations cycle-accurately (paper Fig. 2(b): host embeds tokens,
//!   accelerator runs the transformer blocks, host synchronizes the output
//!   and feeds generation back), producing latency, throughput, breakdown
//!   and energy reports.
//! * [`DistributedGpt2`] — the *functional* engine: executes real W8A8
//!   inference partitioned across N simulated nodes with ring all-gathers
//!   between sharded stages. In [`RingMode::Exact`] the result is
//!   bit-identical to the single-node reference model, which the test
//!   suite uses to prove the partitioning algebra correct.

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_model::attention::{attend_heads_into, AttnScratch};
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_model::sampler::Sampler;
use looplynx_tensor::activation::gelu_in_place;
use looplynx_tensor::norm::{layernorm_into, residual_add_into};
use looplynx_tensor::quant::quantize_into;

use crate::config::ArchConfig;
use crate::energy::{fpga_energy, EnergyReport};
use crate::latency::LatencyBreakdown;
use crate::parallel::{shard_weights, NodeWeights, PartitionError};
use crate::router::{RingMode, Router};
use crate::scheduler::{Scheduler, TokenTiming};

/// Which phase a simulated token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenPhase {
    /// Prompt processing (KV-cache fill; logits only for the last token).
    Prefill,
    /// Auto-regressive generation.
    Decode,
}

/// Latency/energy outcome of a simulated generation.
///
/// Accounting follows the *paper's* convention: every generated token is
/// charged one full decode pass, so `decode_ms` covers `decode_tokens`
/// passes and [`GenerationReport::tokens_per_second`] is the Table III
/// steady-state metric. The serving layer (`looplynx-serve`) instead
/// models the deployed pipeline, where the first output token is sampled
/// from the prefill logits and only `decode_tokens - 1` decode iterations
/// run — its TPOT is therefore not directly comparable to
/// [`GenerationReport::decode_ms_per_token`] for short generations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Ring size used.
    pub nodes: usize,
    /// Prompt length.
    pub prefill_tokens: usize,
    /// Generated tokens.
    pub decode_tokens: usize,
    /// Prefill wall-clock in milliseconds.
    pub prefill_ms: f64,
    /// Decode wall-clock in milliseconds.
    pub decode_ms: f64,
    /// Accumulated latency buckets over the whole run.
    pub breakdown: LatencyBreakdown,
    /// Energy over the whole run.
    pub energy: EnergyReport,
}

impl GenerationReport {
    /// Total wall-clock in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.prefill_ms + self.decode_ms
    }

    /// Average decode latency per generated token in milliseconds.
    ///
    /// Returns `0.0` for a degenerate report (zero tokens or zero decode
    /// wall-clock) rather than `inf`/`NaN`.
    pub fn decode_ms_per_token(&self) -> f64 {
        if self.decode_tokens == 0 || self.decode_ms <= 0.0 {
            return 0.0;
        }
        self.decode_ms / self.decode_tokens as f64
    }

    /// Decode throughput in tokens per second (Table III metric).
    ///
    /// Returns `0.0` for a degenerate report (zero decode wall-clock)
    /// rather than `inf`/`NaN`.
    pub fn tokens_per_second(&self) -> f64 {
        if self.decode_ms <= 0.0 {
            return 0.0;
        }
        self.decode_tokens as f64 / (self.decode_ms / 1e3)
    }
}

impl fmt::Display for GenerationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}] on {} node(s): {:.1} ms total, {:.2} ms/token, {:.1} tok/s, {:.1} J",
            self.prefill_tokens,
            self.decode_tokens,
            self.nodes,
            self.total_ms(),
            self.decode_ms_per_token(),
            self.tokens_per_second(),
            self.energy.joules
        )
    }
}

/// Aggregate timing of a multi-token phase (a prefill walk or a batched
/// decode iteration): total exposed cycles plus the bucketized breakdown,
/// without the per-stage trace of [`TokenTiming`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Total exposed cycles of the phase.
    pub cycles: looplynx_sim::time::Cycles,
    /// Bucketized breakdown over the phase.
    pub breakdown: LatencyBreakdown,
}

impl PhaseTiming {
    /// Milliseconds under the configuration's clock.
    pub fn to_millis(&self, cfg: &ArchConfig) -> f64 {
        self.cycles.to_millis(cfg.freq())
    }
}

/// The LoopLynx timing engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopLynx {
    scheduler: Scheduler,
}

impl LoopLynx {
    /// Creates an engine for the model on the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model cannot be split over the
    /// configured ring.
    pub fn new(model: ModelConfig, arch: ArchConfig) -> Result<Self, PartitionError> {
        Ok(LoopLynx {
            scheduler: Scheduler::new(arch, model)?,
        })
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &ArchConfig {
        self.scheduler.config()
    }

    /// The model configuration.
    pub fn model(&self) -> &ModelConfig {
        self.scheduler.model()
    }

    /// The underlying stage scheduler (for callers that need raw
    /// per-stage schedules, e.g. the serving layer and invariant tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Cycle-accurate timing of one token at the given cache context.
    pub fn simulate_token(
        &self,
        context: usize,
        phase: TokenPhase,
        is_last_prefill: bool,
    ) -> TokenTiming {
        let with_lm_head = match phase {
            TokenPhase::Decode => true,
            TokenPhase::Prefill => is_last_prefill,
        };
        self.scheduler.schedule_token(context, with_lm_head)
    }

    /// Steady-state decode latency in ms at a fixed context — the paper's
    /// Table II "token latency" operating point.
    pub fn steady_state_decode_ms(&self, context: usize) -> f64 {
        self.simulate_token(context, TokenPhase::Decode, false)
            .total_ms(self.arch())
    }

    /// Cycle-accurate timing of the whole prompt-processing phase for a
    /// `prefill`-token prompt: all but the last token run in weight-sharing
    /// batches of [`ArchConfig::prefill_batch`] (the paper's behaviour is
    /// batch = 1); the last prefill token runs unbatched because it
    /// produces logits.
    ///
    /// # Panics
    ///
    /// Panics if `prefill` is zero or exceeds the model's maximum.
    pub fn simulate_prefill(&self, prefill: usize) -> PhaseTiming {
        assert!(prefill > 0, "need at least one prompt token");
        assert!(
            prefill <= self.model().max_seq,
            "prompt {} exceeds max_seq {}",
            prefill,
            self.model().max_seq
        );
        let mut breakdown = LatencyBreakdown::zero();
        let mut cycles = 0u64;
        let batch = self.arch().prefill_batch();
        let mut t = 0usize;
        while t + 1 < prefill {
            let this_batch = batch.min(prefill - 1 - t);
            if this_batch > 1 {
                let timing = self.scheduler.schedule_prefill_batch(t + 1, this_batch);
                cycles += timing.total.as_u64();
                breakdown += timing.breakdown;
            } else {
                let timing = self.simulate_token(t + 1, TokenPhase::Prefill, false);
                cycles += timing.total.as_u64();
                breakdown += timing.breakdown;
            }
            t += this_batch;
        }
        let timing = self.simulate_token(prefill, TokenPhase::Prefill, true);
        cycles += timing.total.as_u64();
        breakdown += timing.breakdown;
        PhaseTiming {
            cycles: looplynx_sim::time::Cycles::new(cycles),
            breakdown,
        }
    }

    /// Cycle-accurate timing of one continuous-batching decode iteration —
    /// one token for each concurrent request, all sharing every weight
    /// pass. Delegates to [`Scheduler::schedule_decode_batch`]; see there
    /// for the cost model.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is empty or any context is zero.
    pub fn simulate_decode_batch(&self, contexts: &[usize]) -> PhaseTiming {
        let timing = self.scheduler.schedule_decode_batch(contexts);
        PhaseTiming {
            cycles: timing.total,
            breakdown: timing.breakdown,
        }
    }

    /// Simulates a full `[prefill : decode]` generation.
    ///
    /// Each of the `decode` tokens is charged one full decode pass (the
    /// paper's accounting — see [`GenerationReport`] for how this differs
    /// from the serving layer's first-token-from-prefill pipeline model).
    ///
    /// # Panics
    ///
    /// Panics if `prefill` or `decode` is zero or the sequence exceeds the
    /// model's maximum.
    pub fn simulate_generation(&self, prefill: usize, decode: usize) -> GenerationReport {
        assert!(prefill > 0 && decode > 0, "need at least one token each");
        assert!(
            prefill + decode <= self.model().max_seq,
            "sequence {} exceeds max_seq {}",
            prefill + decode,
            self.model().max_seq
        );
        let prefill_phase = self.simulate_prefill(prefill);
        let mut breakdown = prefill_phase.breakdown;
        let mut decode_cycles = 0u64;
        for t in 0..decode {
            let timing = self.simulate_token(prefill + t + 1, TokenPhase::Decode, false);
            decode_cycles += timing.total.as_u64();
            breakdown += timing.breakdown;
        }
        let freq = self.arch().freq();
        let prefill_ms = prefill_phase.cycles.to_millis(freq);
        let decode_ms = looplynx_sim::time::Cycles::new(decode_cycles).to_millis(freq);
        let total_s = (prefill_ms + decode_ms) / 1e3;
        let energy = fpga_energy(self.arch(), total_s, decode, 1.0);
        GenerationReport {
            nodes: self.arch().nodes(),
            prefill_tokens: prefill,
            decode_tokens: decode,
            prefill_ms,
            decode_ms,
            breakdown,
            energy,
        }
    }
}

/// Per-node functional state: weight shards, head-sliced KV caches, and
/// the node's persistent attention working memory (kept here so both the
/// sequential loop and per-stage spawned threads reuse the same buffers
/// across layers and tokens instead of reallocating).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeState {
    weights: NodeWeights,
    caches: Vec<LayerKvCache>,
    scratch: AttnScratch,
}

/// Scratch holds no semantic state (every buffer is overwritten before
/// use), so node equality is weights + caches only.
impl PartialEq for NodeState {
    fn eq(&self, other: &Self) -> bool {
        self.weights == other.weights && self.caches == other.caches
    }
}

/// Runs `f` once per node — the data-parallel section between two ring
/// synchronizations. Nodes are data-independent there (each touches only
/// its own shard and cache), so when `threaded` the closures run under
/// [`std::thread::scope`], one OS thread per node. Results are collected
/// in node order (join order equals spawn order), which makes the
/// threaded path bit-identical to the sequential one: the per-node
/// computation is untouched and gathers see shards in the same order.
fn par_map_nodes<T: Send>(
    nodes: &mut [NodeState],
    threaded: bool,
    f: impl Fn(usize, &mut NodeState) -> T + Sync,
) -> Vec<T> {
    if !threaded || nodes.len() < 2 {
        return nodes.iter_mut().enumerate().map(|(i, n)| f(i, n)).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = nodes
            .iter_mut()
            .enumerate()
            .map(|(i, n)| s.spawn(move || f(i, n)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    })
}

/// Smallest `d_model` for which threading per-node stages pays for the
/// thread spawn/join overhead (below it, a node's whole shard pass is
/// cheaper than dispatching a thread).
const THREADING_MIN_D_MODEL: usize = 256;

/// Functionally-correct multi-node W8A8 inference over the simulated ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedGpt2 {
    model_cfg: ModelConfig,
    router: Router,
    nodes: Vec<NodeState>,
    // Host-side tables (embedding + final LN replicated to every node).
    host: Gpt2Model,
    pos: usize,
    /// Execute per-node stages on scoped threads (bit-identical either
    /// way; see [`DistributedGpt2::set_threaded`]).
    threaded: bool,
}

impl DistributedGpt2 {
    /// Partitions `model`'s weights across `nodes` ring nodes.
    ///
    /// Node-parallel threading defaults to on when there is more than one
    /// node, the host has more than one core, and the model is large
    /// enough for a per-node stage to outweigh thread dispatch; override
    /// with [`DistributedGpt2::set_threaded`].
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the model does not divide.
    pub fn new(model: &Gpt2Model, nodes: usize, mode: RingMode) -> Result<Self, PartitionError> {
        let cfg = model.config().clone();
        let shards = shard_weights(model.weights(), &cfg, nodes)?;
        let d_head = cfg.d_head();
        let node_states: Vec<NodeState> = shards
            .into_iter()
            .map(|weights| NodeState {
                caches: (0..cfg.layers)
                    .map(|_| {
                        LayerKvCache::with_capacity(d_head, weights.head_range.len(), cfg.max_seq)
                    })
                    .collect(),
                weights,
                scratch: AttnScratch::new(),
            })
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threaded = nodes > 1 && cores > 1 && cfg.d_model >= THREADING_MIN_D_MODEL;
        Ok(DistributedGpt2 {
            router: Router::new(nodes, mode),
            nodes: node_states,
            host: model.clone(),
            model_cfg: cfg,
            pos: 0,
            threaded,
        })
    }

    /// Ring size.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether per-node stages run on scoped threads.
    pub fn threaded(&self) -> bool {
        self.threaded
    }

    /// Forces node-parallel threading on or off. Results are bit-identical
    /// in both modes (pinned by tests); only wall-clock changes.
    pub fn set_threaded(&mut self, threaded: bool) {
        self.threaded = threaded;
    }

    /// Tokens processed so far.
    pub fn seq_len(&self) -> usize {
        self.pos
    }

    /// Per-node int8 KV bytes currently cached (shows the head-wise
    /// footprint reduction).
    pub fn node_kv_bytes(&self, node: usize) -> usize {
        self.nodes[node]
            .caches
            .iter()
            .map(LayerKvCache::byte_len)
            .sum()
    }

    /// Resets all node caches.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            for c in &mut n.caches {
                c.clear();
            }
        }
        self.pos = 0;
    }

    /// Runs one token through the distributed pipeline; returns logits when
    /// requested.
    ///
    /// Every per-node section between two ring synchronizations runs
    /// through [`par_map_nodes`] — sequential or one scoped thread per
    /// node depending on [`DistributedGpt2::threaded`], bit-identical
    /// either way.
    fn forward_token(&mut self, token: u32, want_logits: bool) -> Option<Vec<f32>> {
        let cfg = &self.model_cfg;
        let d = cfg.d_model;
        let d_head = cfg.d_head();
        let n = self.nodes.len();
        let pos = self.pos;
        let threaded = self.threaded;

        // Host distributes the same full embedding vector to all nodes.
        let mut x = self.host.embed(token, pos);

        // Host-side working buffers, hoisted out of the layer loop so the
        // replicated critical-path operators (LN, quantize, residual)
        // allocate once per token instead of once per layer.
        let mut h = Vec::new();
        let mut q8 = Vec::new();
        let mut x1 = Vec::new();

        for layer in 0..cfg.layers {
            // LN1 computed redundantly on every node (identical result).
            layernorm_into(&x, &self.nodes[0].weights.layers[layer].ln1, &mut h);
            let h_scale = quantize_into(&h, &mut q8);

            // QKV projection: head-aligned shards, attention node-local.
            let attn_shards = par_map_nodes(&mut self.nodes, threaded, |_, node| {
                let shard = &node.weights.layers[layer];
                let w = d / n;
                let mut qkv = Vec::new();
                shard.qkv.forward_raw_into(&q8, h_scale, &mut qkv);
                let (q, kv) = qkv.split_at(w);
                let (k, v) = kv.split_at(w);
                node.caches[layer].append(k, v);
                let head_range = node.weights.head_range.clone();
                let mut attn = Vec::new();
                attend_heads_into(
                    q,
                    &node.caches[layer],
                    head_range.clone(),
                    head_range.start,
                    d_head,
                    pos + 1,
                    &mut node.scratch,
                    &mut attn,
                );
                attn
            });
            let attn = self.router.all_gather_owned(attn_shards);

            // Output projection shards + gather, then residual.
            let a_scale = quantize_into(&attn, &mut q8);
            let proj_shards = par_map_nodes(&mut self.nodes, threaded, |_, node| {
                let mut out = Vec::new();
                node.weights.layers[layer]
                    .proj
                    .forward_raw_into(&q8, a_scale, &mut out);
                out
            });
            let proj = self.router.all_gather_owned(proj_shards);
            residual_add_into(&x, &proj, &mut x1);

            // MLP: FC1 + node-local GELU, gather, FC2, gather, residual.
            layernorm_into(&x1, &self.nodes[0].weights.layers[layer].ln2, &mut h);
            let h2_scale = quantize_into(&h, &mut q8);
            let gelu_shards = par_map_nodes(&mut self.nodes, threaded, |_, node| {
                let mut f1 = Vec::new();
                node.weights.layers[layer]
                    .fc1
                    .forward_raw_into(&q8, h2_scale, &mut f1);
                gelu_in_place(&mut f1);
                f1
            });
            let g = self.router.all_gather_owned(gelu_shards);
            let g_scale = quantize_into(&g, &mut q8);
            let f2_shards = par_map_nodes(&mut self.nodes, threaded, |_, node| {
                let mut out = Vec::new();
                node.weights.layers[layer]
                    .fc2
                    .forward_raw_into(&q8, g_scale, &mut out);
                out
            });
            let f2 = self.router.all_gather_owned(f2_shards);
            residual_add_into(&x1, &f2, &mut x);
        }
        self.pos += 1;
        if !want_logits {
            return None;
        }

        // Final LN (replicated) and vocabulary-sharded LM head; the host
        // concatenates logit shards in node order over PCIe.
        layernorm_into(&x, &self.nodes[0].weights.ln_f, &mut h);
        let hf_scale = quantize_into(&h, &mut q8);
        let logits: Vec<f32> = par_map_nodes(&mut self.nodes, threaded, |_, node| {
            let mut out = Vec::new();
            node.weights
                .lm_head
                .forward_raw_into(&q8, hf_scale, &mut out);
            out
        })
        .into_iter()
        .flatten()
        .collect();
        Some(logits)
    }

    /// Prefill: processes the prompt, returns last-token logits.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let (last, rest) = prompt.split_last().expect("non-empty");
        for &t in rest {
            self.forward_token(t, false);
        }
        self.forward_token(*last, true).expect("logits requested")
    }

    /// Decode step: one token in, next-token logits out.
    pub fn decode_step(&mut self, token: u32) -> Vec<f32> {
        self.forward_token(token, true).expect("logits requested")
    }

    /// Generates up to `n` tokens after prefilling `prompt`.
    ///
    /// The final sampled token is *not* fed back through the pipeline —
    /// its successor's logits would be discarded, and a full distributed
    /// forward pass per call was exactly the waste this guards against —
    /// so after a full generation `seq_len()` is
    /// `prompt.len() + n - 1`.
    ///
    /// The returned vector's length is the number of tokens actually
    /// produced: it is shorter than `n` when the KV cache reaches the
    /// model's `max_seq` (generation stops early because no further token
    /// can be forwarded).
    ///
    /// Because the last token is never forwarded, it is also absent from
    /// the KV caches. To continue a conversation, start the next call's
    /// prompt with the previous call's final output token (the natural
    /// chat flow) so prefill appends it before any new text.
    pub fn generate(&mut self, prompt: &[u32], n: usize, sampler: &mut Sampler) -> Vec<u32> {
        let mut logits = self.prefill(prompt);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let next = sampler.sample(&logits);
            out.push(next);
            // The last requested token needs no forward pass (nothing
            // consumes its logits), and a token that would overflow the
            // cache cannot run one.
            if i + 1 == n || self.pos >= self.model_cfg.max_seq {
                break;
            }
            logits = self.decode_step(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(nodes: usize) -> LoopLynx {
        LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(nodes).build().unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn generation_report_aggregates() {
        let e = engine(2);
        let r = e.simulate_generation(16, 16);
        assert_eq!(r.prefill_tokens, 16);
        assert_eq!(r.decode_tokens, 16);
        assert!(r.prefill_ms > 0.0 && r.decode_ms > 0.0);
        assert!((r.total_ms() - (r.prefill_ms + r.decode_ms)).abs() < 1e-9);
        assert!(r.tokens_per_second() > 0.0);
        assert!(r.energy.joules > 0.0);
    }

    #[test]
    fn table2_operating_point() {
        // steady-state decode at context 512 reproduces Table II latencies
        let l1 = engine(1).steady_state_decode_ms(512);
        let l2 = engine(2).steady_state_decode_ms(512);
        let l4 = engine(4).steady_state_decode_ms(512);
        assert!((5.8..7.4).contains(&l1), "1-node {l1}");
        assert!((3.4..4.3).contains(&l2), "2-node {l2}");
        assert!((2.2..2.9).contains(&l4), "4-node {l4}");
    }

    #[test]
    fn invalid_partition_is_an_error() {
        let res = LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(5).build().unwrap(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn prefill_batching_extension_speeds_up_prompts() {
        // Extension beyond the paper: batched prefill amortizes weight
        // streaming across prompt tokens.
        let model = ModelConfig::gpt2_medium();
        let unbatched = LoopLynx::new(
            model.clone(),
            ArchConfig::builder().nodes(2).build().unwrap(),
        )
        .unwrap()
        .simulate_generation(128, 32);
        let batched = LoopLynx::new(
            model,
            ArchConfig::builder()
                .nodes(2)
                .prefill_batch(8)
                .build()
                .unwrap(),
        )
        .unwrap()
        .simulate_generation(128, 32);
        assert!(
            batched.prefill_ms < 0.75 * unbatched.prefill_ms,
            "batched {} vs unbatched {}",
            batched.prefill_ms,
            unbatched.prefill_ms
        );
        // decode path is untouched
        let rel = (batched.decode_ms - unbatched.decode_ms).abs() / unbatched.decode_ms;
        assert!(rel < 1e-9, "decode changed by {rel}");
    }

    #[test]
    fn prefill_batching_saturates_at_compute_bound() {
        // Doubling the batch beyond the DSP-packing limit stops helping:
        // per-token prefill latency converges.
        let model = ModelConfig::gpt2_medium();
        let per_token = |batch: usize| {
            LoopLynx::new(
                model.clone(),
                ArchConfig::builder()
                    .nodes(2)
                    .prefill_batch(batch)
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .simulate_generation(128, 2)
            .prefill_ms
                / 128.0
        };
        let b1 = per_token(1);
        let b2 = per_token(2);
        let b16 = per_token(16);
        let b32 = per_token(32);
        assert!(b2 < b1);
        assert!(b16 < b2);
        // diminishing returns: the last doubling buys < 20 %
        assert!(b32 > 0.8 * b16, "b16 {b16} vs b32 {b32}");
    }

    #[test]
    fn prefill_is_cheaper_per_token_than_decode() {
        let e = engine(2);
        let r = e.simulate_generation(64, 64);
        let prefill_per = r.prefill_ms / 64.0;
        let decode_per = r.decode_ms / 64.0;
        assert!(
            prefill_per < decode_per,
            "prefill {prefill_per} vs decode {decode_per}"
        );
    }

    #[test]
    fn distributed_exact_matches_reference_logits() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 21);
        for nodes in [1usize, 2, 4] {
            let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact).unwrap();
            let mut single = reference.clone();
            let prompt = [3u32, 14, 15, 9, 2];
            let a = single.prefill(&prompt);
            let b = dist.prefill(&prompt);
            assert_eq!(
                a, b,
                "exact-mode logits must be bit-identical ({nodes} nodes)"
            );
            let a2 = single.decode_step(7);
            let b2 = dist.decode_step(7);
            assert_eq!(a2, b2, "decode logits must match ({nodes} nodes)");
        }
    }

    #[test]
    fn distributed_quantized_is_close_and_agrees_on_greedy_tokens() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 33);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Quantized).unwrap();
        let mut single = reference.clone();
        let prompt = [5u32, 6, 7];
        let a = single.generate(&prompt, 8, &mut Sampler::greedy());
        let b = dist.generate(&prompt, 8, &mut Sampler::greedy());
        // int8 ring payloads perturb logits slightly; greedy sequences may
        // diverge late but must agree at the start
        assert_eq!(a[0], b[0], "first generated token diverged: {a:?} vs {b:?}");
    }

    #[test]
    fn generate_skips_wasted_final_forward() {
        // Regression: the final decode_step used to run a full distributed
        // forward pass whose logits were immediately discarded. After the
        // fix the last sampled token is never forwarded, so the cache holds
        // exactly prompt + n - 1 tokens.
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 77);
        let prompt = [3u32, 14, 15, 9, 2];
        let n = 6;
        for nodes in [1usize, 2] {
            let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact).unwrap();
            let out = dist.generate(&prompt, n, &mut Sampler::greedy());
            assert_eq!(out.len(), n);
            assert_eq!(
                dist.seq_len(),
                prompt.len() + n - 1,
                "{nodes} nodes: wasted forward pass crept back in"
            );
        }
        // the reference engine agrees (same fix applied there)
        let mut single = reference.clone();
        single.generate(&prompt, n, &mut Sampler::greedy());
        assert_eq!(single.seq_len(), prompt.len() + n - 1);
    }

    #[test]
    fn generate_still_matches_reference_after_skip_fix() {
        // Skipping the wasted pass must not change the tokens produced.
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 33);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact).unwrap();
        let mut single = reference.clone();
        let prompt = [5u32, 6, 7];
        let a = single.generate(&prompt, 8, &mut Sampler::greedy());
        let b = dist.generate(&prompt, 8, &mut Sampler::greedy());
        assert_eq!(a, b, "exact-mode generation must match the reference");
    }

    #[test]
    fn degenerate_report_math_is_finite() {
        // decode_ms == 0 (and decode_tokens == 0) must not produce
        // inf/NaN in the derived metrics.
        let e = engine(2);
        let mut r = e.simulate_generation(8, 8);
        r.decode_ms = 0.0;
        assert_eq!(r.tokens_per_second(), 0.0);
        assert_eq!(r.decode_ms_per_token(), 0.0);
        r.decode_tokens = 0;
        assert_eq!(r.tokens_per_second(), 0.0);
        assert_eq!(r.decode_ms_per_token(), 0.0);
        assert!(r.to_string().contains("tok/s"));
    }

    #[test]
    fn simulate_prefill_matches_generation_prefill() {
        for batch in [1usize, 8] {
            let e = LoopLynx::new(
                ModelConfig::gpt2_medium(),
                ArchConfig::builder()
                    .nodes(2)
                    .prefill_batch(batch)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let phase = e.simulate_prefill(37);
            let report = e.simulate_generation(37, 1);
            assert_eq!(phase.to_millis(e.arch()), report.prefill_ms);
        }
    }

    #[test]
    fn node_kv_footprint_shrinks_with_nodes() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 40);
        let mut one = DistributedGpt2::new(&reference, 1, RingMode::Exact).unwrap();
        let mut four = DistributedGpt2::new(&reference, 4, RingMode::Exact).unwrap();
        one.prefill(&[1, 2, 3, 4]);
        four.prefill(&[1, 2, 3, 4]);
        assert_eq!(one.node_kv_bytes(0), 4 * four.node_kv_bytes(0));
    }

    #[test]
    fn reset_restores_distributed_state() {
        let cfg = ModelConfig::tiny();
        let reference = Gpt2Model::synthetic(&cfg, 50);
        let mut dist = DistributedGpt2::new(&reference, 2, RingMode::Exact).unwrap();
        let first = dist.prefill(&[1, 2]);
        dist.reset();
        assert_eq!(dist.seq_len(), 0);
        let second = dist.prefill(&[1, 2]);
        assert_eq!(first, second);
    }
}
