//! Quantized key/value cache with head-wise granularity, stored as one
//! contiguous head-major arena per layer.
//!
//! "During the prefill stage, the LLM processes user input prompts to fill
//! the KV cache … during decoding, the accumulated KV cache avoids
//! repeatedly … recalculating previous tokens" (paper Section III). The
//! cache stores int8 keys/values with one scale per *head* per token —
//! matching the paper's "head-wise partitioning approach for the KV cache":
//! because quantization granularity aligns with the partition boundary, a
//! node holding a subset of heads stores bit-identical data to the
//! corresponding slice of a single-node cache.
//!
//! # Arena layout
//!
//! Instead of `keys[token][head]: Vec<Vec<QuantizedVector>>` (two heap
//! allocations per head per token), each layer owns a single `Vec<i8>`
//! arena per side laid out **head-major**:
//!
//! ```text
//! keys[h * capacity * d_head + t * d_head + j]      (int8 payload)
//! key_scales[h * capacity + t]                      (f32, per head/token)
//! ```
//!
//! so head `h`'s keys for tokens `0..len` are one contiguous strip —
//! exactly the access pattern of the decode attention loop, which dots a
//! query head over every cached token of that head. Preallocating
//! `capacity` tokens (via [`LayerKvCache::with_capacity`]) makes decode
//! appends pure writes: no reallocation, no per-token heap traffic.

use serde::{Deserialize, Serialize};

use looplynx_tensor::quant::{scale_for, QuantizedVector};

/// Token capacity a growable cache starts with when the first append
/// arrives without an explicit capacity.
const DEFAULT_CAPACITY: usize = 64;

/// A borrowed view of one head's quantized vector for one token: the int8
/// strip plus its scale. The arena-backed replacement for handing out
/// `&QuantizedVector`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedView<'a> {
    data: &'a [i8],
    scale: f32,
}

impl<'a> QuantizedView<'a> {
    /// The int8 payload.
    pub fn data(&self) -> &'a [i8] {
        self.data
    }

    /// The symmetric scale (`real = q * scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reconstructs the real-valued vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Copies the view into an owned [`QuantizedVector`].
    pub fn to_owned_vector(&self) -> QuantizedVector {
        QuantizedVector::new(self.data.to_vec(), self.scale)
    }
}

/// KV cache of one transformer layer (or one node's head-slice of it).
//
// NOTE on the serde derives: the workspace's vendored `serde` exposes
// marker traits only, so nothing actually serializes this type today. A
// real serializer would naively emit the full preallocated arena
// (capacity, not len); switch to a manual impl that writes only the live
// `len`-token prefix per head before adopting a real serde backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerKvCache {
    d_head: usize,
    /// Heads per token; 0 until the first append fixes the geometry.
    heads: usize,
    /// Cached tokens.
    len: usize,
    /// Token capacity of the arenas (the per-head stride).
    capacity: usize,
    /// Head-major int8 key arena (`heads * capacity * d_head` bytes).
    keys: Vec<i8>,
    values: Vec<i8>,
    /// Head-major per-(head, token) key scales (`heads * capacity`).
    key_scales: Vec<f32>,
    value_scales: Vec<f32>,
}

impl LayerKvCache {
    /// Creates an empty cache for vectors divisible into `d_head` chunks.
    /// The arena is allocated lazily at the first append and grows (by
    /// re-striding) if the sequence outruns it; prefer
    /// [`LayerKvCache::with_capacity`] on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `d_head` is zero.
    pub fn new(d_head: usize) -> Self {
        assert!(d_head > 0, "d_head must be positive");
        LayerKvCache {
            d_head,
            heads: 0,
            len: 0,
            capacity: 0,
            keys: Vec::new(),
            values: Vec::new(),
            key_scales: Vec::new(),
            value_scales: Vec::new(),
        }
    }

    /// Creates a cache with the arena preallocated for `heads` heads and
    /// `capacity` tokens, so appends up to `capacity` never reallocate.
    ///
    /// # Panics
    ///
    /// Panics if `d_head` or `heads` is zero.
    pub fn with_capacity(d_head: usize, heads: usize, capacity: usize) -> Self {
        assert!(d_head > 0, "d_head must be positive");
        assert!(heads > 0, "heads must be positive");
        let mut cache = LayerKvCache::new(d_head);
        cache.heads = heads;
        cache.allocate(capacity.max(1));
        cache
    }

    fn allocate(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.keys = vec![0; self.heads * capacity * self.d_head];
        self.values = vec![0; self.heads * capacity * self.d_head];
        self.key_scales = vec![0.0; self.heads * capacity];
        self.value_scales = vec![0.0; self.heads * capacity];
    }

    /// Re-strides the arenas to a larger token capacity, copying each
    /// head's live strip. Rare (only when a sequence outruns the
    /// preallocation); appends within capacity never move data.
    fn grow(&mut self, capacity: usize) {
        debug_assert!(capacity > self.capacity);
        let old = std::mem::replace(self, LayerKvCache::new(self.d_head));
        self.heads = old.heads;
        self.len = old.len;
        self.allocate(capacity);
        let d = self.d_head;
        for h in 0..self.heads {
            let live = old.len * d;
            let (osrc, odst) = (h * old.capacity * d, h * capacity * d);
            self.keys[odst..odst + live].copy_from_slice(&old.keys[osrc..osrc + live]);
            self.values[odst..odst + live].copy_from_slice(&old.values[osrc..osrc + live]);
            let (ssrc, sdst) = (h * old.capacity, h * capacity);
            self.key_scales[sdst..sdst + old.len]
                .copy_from_slice(&old.key_scales[ssrc..ssrc + old.len]);
            self.value_scales[sdst..sdst + old.len]
                .copy_from_slice(&old.value_scales[ssrc..ssrc + old.len]);
        }
    }

    /// Head dimension.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heads per cached vector (0 when the geometry is not yet fixed).
    pub fn heads(&self) -> usize {
        if self.len == 0 && self.capacity == 0 {
            0
        } else {
            self.heads
        }
    }

    /// Token capacity before the next append reallocates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Quantizes and appends one token's key and value vectors, one scale
    /// per `d_head` chunk — identical quantization math to the former
    /// nested-Vec cache (`quantize_vec` per head), but writing int8
    /// straight into the arena.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` lengths differ, are not multiples of `d_head`, or
    /// change between calls.
    pub fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), v.len(), "key/value length mismatch");
        assert_eq!(k.len() % self.d_head, 0, "vector not divisible by d_head");
        let heads = k.len() / self.d_head;
        assert!(heads > 0, "vector not divisible by d_head");
        if self.heads == 0 {
            self.heads = heads;
        } else {
            assert_eq!(heads, self.heads, "head count changed between appends");
        }
        if self.capacity == 0 {
            self.allocate(DEFAULT_CAPACITY);
        } else if self.len == self.capacity {
            self.grow((self.capacity * 2).max(DEFAULT_CAPACITY));
        }
        let (d, t, cap) = (self.d_head, self.len, self.capacity);
        for h in 0..heads {
            let src = h * d..(h + 1) * d;
            let dst = (h * cap + t) * d;
            self.key_scales[h * cap + t] =
                quantize_chunk(&k[src.clone()], &mut self.keys[dst..dst + d]);
            self.value_scales[h * cap + t] =
                quantize_chunk(&v[src], &mut self.values[dst..dst + d]);
        }
        self.len += 1;
    }

    /// Cached key of token `t`, head `h` (local head index).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn key_head(&self, t: usize, h: usize) -> QuantizedView<'_> {
        assert!(t < self.len && h < self.heads, "key ({t},{h}) out of range");
        let base = (h * self.capacity + t) * self.d_head;
        QuantizedView {
            data: &self.keys[base..base + self.d_head],
            scale: self.key_scales[h * self.capacity + t],
        }
    }

    /// Cached value of token `t`, head `h` (local head index).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value_head(&self, t: usize, h: usize) -> QuantizedView<'_> {
        assert!(
            t < self.len && h < self.heads,
            "value ({t},{h}) out of range"
        );
        let base = (h * self.capacity + t) * self.d_head;
        QuantizedView {
            data: &self.values[base..base + self.d_head],
            scale: self.value_scales[h * self.capacity + t],
        }
    }

    /// Head `h`'s keys for all cached tokens as one contiguous strip of
    /// `len() * d_head` int8 values (token `t` at `t * d_head`).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn key_strip(&self, h: usize) -> &[i8] {
        assert!(h < self.heads, "head {h} out of range");
        let base = h * self.capacity * self.d_head;
        &self.keys[base..base + self.len * self.d_head]
    }

    /// Head `h`'s values for all cached tokens as one contiguous strip.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn value_strip(&self, h: usize) -> &[i8] {
        assert!(h < self.heads, "head {h} out of range");
        let base = h * self.capacity * self.d_head;
        &self.values[base..base + self.len * self.d_head]
    }

    /// Per-token key scales of head `h` (one per cached token).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn key_scales(&self, h: usize) -> &[f32] {
        assert!(h < self.heads, "head {h} out of range");
        &self.key_scales[h * self.capacity..h * self.capacity + self.len]
    }

    /// Per-token value scales of head `h` (one per cached token).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn value_scales(&self, h: usize) -> &[f32] {
        assert!(h < self.heads, "head {h} out of range");
        &self.value_scales[h * self.capacity..h * self.capacity + self.len]
    }

    /// Appends one token whose per-head K/V is *already quantized* —
    /// `k`/`v` hold `heads() * d_head` int8 values (head-major for the
    /// token) and `k_scales`/`v_scales` one scale per head. Used by the
    /// paged arena to materialize a contiguous cache without
    /// requantizing (requantizing int8 data would not round-trip).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not fixed yet (use
    /// [`LayerKvCache::with_capacity`]) or any slice length disagrees
    /// with it.
    pub fn append_quantized(&mut self, k: &[i8], k_scales: &[f32], v: &[i8], v_scales: &[f32]) {
        assert!(self.heads > 0, "geometry not fixed; use with_capacity");
        assert_eq!(k.len(), self.heads * self.d_head, "key length mismatch");
        assert_eq!(v.len(), self.heads * self.d_head, "value length mismatch");
        assert_eq!(k_scales.len(), self.heads, "key scale count mismatch");
        assert_eq!(v_scales.len(), self.heads, "value scale count mismatch");
        if self.capacity == 0 {
            self.allocate(DEFAULT_CAPACITY);
        } else if self.len == self.capacity {
            self.grow((self.capacity * 2).max(DEFAULT_CAPACITY));
        }
        let (d, t, cap) = (self.d_head, self.len, self.capacity);
        for h in 0..self.heads {
            let dst = (h * cap + t) * d;
            self.keys[dst..dst + d].copy_from_slice(&k[h * d..(h + 1) * d]);
            self.values[dst..dst + d].copy_from_slice(&v[h * d..(h + 1) * d]);
            self.key_scales[h * cap + t] = k_scales[h];
            self.value_scales[h * cap + t] = v_scales[h];
        }
        self.len += 1;
    }

    /// Int8 bytes held by this layer's cache (keys + values).
    pub fn byte_len(&self) -> usize {
        2 * self.len * self.heads * self.d_head
    }

    /// Clears all cached tokens (the arena allocation is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

/// Content equality: two caches are equal when they hold the same logical
/// tokens (geometry, int8 payloads, scales), regardless of how much spare
/// arena capacity each one carries.
impl PartialEq for LayerKvCache {
    fn eq(&self, other: &Self) -> bool {
        if self.d_head != other.d_head || self.len != other.len {
            return false;
        }
        if self.len == 0 {
            // Two empty caches are equal however they were preallocated
            // (the nested-Vec cache had no geometry at all when empty).
            return true;
        }
        if self.heads() != other.heads() {
            return false;
        }
        (0..self.heads()).all(|h| {
            self.key_strip(h) == other.key_strip(h)
                && self.value_strip(h) == other.value_strip(h)
                && self.key_scales(h) == other.key_scales(h)
                && self.value_scales(h) == other.value_scales(h)
        })
    }
}

/// Quantizes one head's chunk into the arena slot, returning the scale —
/// the same math as `quantize_vec` (absmax → symmetric scale →
/// round-to-nearest-even), minus the allocation. Shared with the paged
/// arena so both storage layouts produce bit-identical int8 payloads.
pub(crate) fn quantize_chunk(src: &[f32], dst: &mut [i8]) -> f32 {
    let scale = scale_for(looplynx_tensor::simd::absmax(src));
    looplynx_tensor::simd::quantize_slice(src, scale, dst);
    scale
}

/// KV caches of every layer of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates caches for `layers` layers with the given head dimension
    /// (arena allocated lazily; see [`KvCache::with_capacity`]).
    pub fn new(layers: usize, d_head: usize) -> Self {
        KvCache {
            layers: (0..layers).map(|_| LayerKvCache::new(d_head)).collect(),
        }
    }

    /// Creates caches with every layer's arena preallocated for `heads`
    /// heads and `capacity` tokens.
    pub fn with_capacity(layers: usize, d_head: usize, heads: usize, capacity: usize) -> Self {
        KvCache {
            layers: (0..layers)
                .map(|_| LayerKvCache::with_capacity(d_head, heads, capacity))
                .collect(),
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Cache of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &LayerKvCache {
        &self.layers[l]
    }

    /// Mutable cache of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_mut(&mut self, l: usize) -> &mut LayerKvCache {
        &mut self.layers[l]
    }

    /// Cached sequence length (tokens in layer 0; all layers stay in step).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Total int8 bytes across all layers.
    pub fn byte_len(&self) -> usize {
        self.layers.iter().map(LayerKvCache::byte_len).sum()
    }

    /// Clears every layer.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.clear();
        }
    }
}

/// A multi-sequence KV arena: `slots` resident sequences, each owning one
/// preallocated contiguous head-major [`LayerKvCache`] arena per layer
/// plus its own position counter.
///
/// This is the state store behind continuous batching: every resident
/// request holds one slot for its lifetime, a batched decode step appends
/// one token to each scheduled slot, and a completed request's slot is
/// recycled through the free list. Because each slot *is* a
/// [`LayerKvCache`], the attention kernels ([`crate::attention`]) read a
/// slot exactly as they read a single-sequence cache — batched execution
/// is bit-identical to running each sequence alone by construction.
///
/// Slots are acquired lowest-index-first so identical admission sequences
/// always map requests to identical slots (reproducible schedules).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotKvArena {
    layers: usize,
    d_head: usize,
    heads: usize,
    capacity: usize,
    slots: Vec<SlotState>,
}

/// One resident sequence's caches and bookkeeping.
#[derive(Debug, Clone, PartialEq)]
struct SlotState {
    /// One preallocated arena per layer.
    caches: Vec<LayerKvCache>,
    /// Tokens this sequence has processed (layer caches stay in step).
    pos: usize,
    /// Whether a sequence currently owns this slot.
    in_use: bool,
}

impl SlotKvArena {
    /// Creates an arena of `slots` sequences, each preallocated for
    /// `layers` layers of `heads` heads and `capacity` tokens. All slots
    /// start free.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, d_head: usize, heads: usize, slots: usize, capacity: usize) -> Self {
        assert!(layers > 0, "layers must be positive");
        assert!(slots > 0, "slots must be positive");
        assert!(capacity > 0, "capacity must be positive");
        SlotKvArena {
            layers,
            d_head,
            heads,
            capacity,
            slots: (0..slots)
                .map(|_| SlotState {
                    caches: (0..layers)
                        .map(|_| LayerKvCache::with_capacity(d_head, heads, capacity))
                        .collect(),
                    pos: 0,
                    in_use: false,
                })
                .collect(),
        }
    }

    /// Total slots (resident-sequence capacity).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Token capacity of each slot.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Layers per slot.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Heads per cached vector.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Currently free slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| !s.in_use).count()
    }

    /// Whether `slot` is owned by a resident sequence.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn in_use(&self, slot: usize) -> bool {
        self.slots[slot].in_use
    }

    /// Claims the lowest-index free slot (cleared, position 0), or `None`
    /// when every slot is resident.
    pub fn acquire(&mut self) -> Option<usize> {
        let slot = self.slots.iter().position(|s| !s.in_use)?;
        let state = &mut self.slots[slot];
        state.in_use = true;
        state.pos = 0;
        for c in &mut state.caches {
            c.clear();
        }
        Some(slot)
    }

    /// Returns `slot` to the free list (the arena allocation is retained).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or not in use.
    pub fn release(&mut self, slot: usize) {
        let state = &mut self.slots[slot];
        assert!(state.in_use, "slot {slot} not in use");
        state.in_use = false;
        state.pos = 0;
        for c in &mut state.caches {
            c.clear();
        }
    }

    /// Tokens processed by the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn pos(&self, slot: usize) -> usize {
        self.slots[slot].pos
    }

    /// Advances `slot`'s position by `tokens` (call after the token walk
    /// appended to every layer cache).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or the position would exceed the
    /// slot capacity.
    pub fn advance(&mut self, slot: usize, tokens: usize) {
        let state = &mut self.slots[slot];
        assert!(
            state.pos + tokens <= self.capacity,
            "slot {slot} overflows capacity {}",
            self.capacity
        );
        state.pos += tokens;
    }

    /// Layer `layer` of the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn layer(&self, slot: usize, layer: usize) -> &LayerKvCache {
        &self.slots[slot].caches[layer]
    }

    /// Mutable layer `layer` of the sequence in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn layer_mut(&mut self, slot: usize, layer: usize) -> &mut LayerKvCache {
        &mut self.slots[slot].caches[layer]
    }

    /// Live int8 bytes across all slots and layers (keys + values).
    pub fn byte_len(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|s| s.caches.iter())
            .map(LayerKvCache::byte_len)
            .sum()
    }
}

/// Content equality: same geometry and the same live sequences (slot
/// occupancy, positions and cached tokens); spare capacity is ignored by
/// the per-layer [`LayerKvCache`] equality.
impl PartialEq for SlotKvArena {
    fn eq(&self, other: &Self) -> bool {
        self.layers == other.layers
            && self.d_head == other.d_head
            && self.heads == other.heads
            && self.slots == other.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back_per_head() {
        let mut c = LayerKvCache::new(2);
        c.append(&[1.0, -1.0, 10.0, 20.0], &[0.5, 0.25, -4.0, 8.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.heads(), 2);
        let k0 = c.key_head(0, 0).dequantize();
        assert!((k0[0] - 1.0).abs() < 0.02);
        let k1 = c.key_head(0, 1).dequantize();
        assert!((k1[1] - 20.0).abs() < 0.2);
        let v1 = c.value_head(0, 1).dequantize();
        assert!((v1[0] + 4.0).abs() < 0.1);
    }

    #[test]
    fn per_head_scales_isolate_outliers() {
        // A huge head 1 must not destroy head 0's precision.
        let mut c = LayerKvCache::new(2);
        c.append(&[0.01, -0.02, 500.0, 250.0], &[0.0; 4]);
        let k0 = c.key_head(0, 0).dequantize();
        assert!((k0[1] + 0.02).abs() < 0.001, "head 0 crushed: {k0:?}");
    }

    #[test]
    fn head_slice_matches_full_cache() {
        // The property the paper's head-wise partitioning relies on: a
        // cache fed only heads 2..4 equals the corresponding slice of the
        // full cache.
        let d_head = 4;
        let full_k: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let full_v: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut full = LayerKvCache::new(d_head);
        full.append(&full_k, &full_v);
        let mut part = LayerKvCache::new(d_head);
        part.append(&full_k[8..16], &full_v[8..16]);
        for h in 0..2 {
            assert_eq!(part.key_head(0, h), full.key_head(0, h + 2));
            assert_eq!(part.value_head(0, h), full.value_head(0, h + 2));
        }
    }

    #[test]
    fn byte_accounting_is_int8() {
        let mut c = LayerKvCache::new(8);
        for _ in 0..5 {
            c.append(&[0.1; 16], &[0.2; 16]);
        }
        // 5 tokens × (16 + 16) bytes
        assert_eq!(c.byte_len(), 160);
    }

    #[test]
    #[should_panic(expected = "head count changed")]
    fn dimension_change_panics() {
        let mut c = LayerKvCache::new(4);
        c.append(&[1.0; 4], &[1.0; 4]);
        c.append(&[1.0; 8], &[1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "not divisible by d_head")]
    fn indivisible_vector_panics() {
        let mut c = LayerKvCache::new(4);
        c.append(&[1.0; 6], &[1.0; 6]);
    }

    #[test]
    fn model_cache_tracks_layers() {
        let mut c = KvCache::new(3, 8);
        assert_eq!(c.layers(), 3);
        assert_eq!(c.seq_len(), 0);
        for l in 0..3 {
            c.layer_mut(l).append(&[0.0; 8], &[0.0; 8]);
        }
        assert_eq!(c.seq_len(), 1);
        assert_eq!(c.byte_len(), 3 * 16);
        c.clear();
        assert_eq!(c.seq_len(), 0);
        assert_eq!(c.byte_len(), 0);
    }

    #[test]
    fn strips_are_token_major_within_head() {
        let mut c = LayerKvCache::with_capacity(2, 2, 8);
        c.append(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        c.append(&[-1.0, -2.0, -3.0, -4.0], &[-5.0, -6.0, -7.0, -8.0]);
        for h in 0..2 {
            let strip = c.key_strip(h);
            assert_eq!(strip.len(), 2 * 2);
            assert_eq!(&strip[..2], c.key_head(0, h).data());
            assert_eq!(&strip[2..], c.key_head(1, h).data());
            assert_eq!(c.key_scales(h).len(), 2);
            assert_eq!(c.key_scales(h)[1], c.key_head(1, h).scale());
            assert_eq!(c.value_scales(h)[0], c.value_head(0, h).scale());
        }
    }

    #[test]
    fn preallocated_appends_never_move_the_arena() {
        let mut c = LayerKvCache::with_capacity(4, 2, 16);
        c.append(&[0.5; 8], &[0.5; 8]);
        let before = c.key_strip(0).as_ptr();
        for _ in 1..16 {
            c.append(&[0.5; 8], &[0.5; 8]);
        }
        assert_eq!(c.len(), 16);
        assert_eq!(before, c.key_strip(0).as_ptr(), "arena reallocated");
    }

    #[test]
    fn growth_preserves_content_and_equality() {
        // A cache that outgrows its arena must hold the same logical
        // content as one preallocated large enough from the start.
        let mk = |t: usize| -> (Vec<f32>, Vec<f32>) {
            (
                (0..8).map(|i| ((i + t) as f32 * 0.31).sin()).collect(),
                (0..8).map(|i| ((i * t + 1) as f32 * 0.17).cos()).collect(),
            )
        };
        let mut small = LayerKvCache::with_capacity(4, 2, 2);
        let mut big = LayerKvCache::with_capacity(4, 2, 128);
        for t in 0..70 {
            let (k, v) = mk(t);
            small.append(&k, &v);
            big.append(&k, &v);
        }
        assert!(small.capacity() >= 70);
        assert_eq!(small, big, "content equality across capacities");
        assert_eq!(small.key_head(69, 1), big.key_head(69, 1));
    }

    #[test]
    fn equality_ignores_capacity_but_not_content() {
        let mut a = LayerKvCache::new(2);
        let mut b = LayerKvCache::with_capacity(2, 2, 99);
        a.append(&[1.0, 2.0, 3.0, 4.0], &[1.0; 4]);
        b.append(&[1.0, 2.0, 3.0, 4.0], &[1.0; 4]);
        assert_eq!(a, b);
        b.append(&[1.0; 4], &[1.0; 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn slot_arena_acquires_lowest_free_slot_and_recycles() {
        let mut a = SlotKvArena::new(2, 4, 2, 3, 8);
        assert_eq!(a.free_slots(), 3);
        assert_eq!(a.acquire(), Some(0));
        assert_eq!(a.acquire(), Some(1));
        assert_eq!(a.acquire(), Some(2));
        assert_eq!(a.acquire(), None, "arena full");
        a.release(1);
        assert_eq!(a.free_slots(), 1);
        assert_eq!(a.acquire(), Some(1), "lowest free slot is reused");
    }

    #[test]
    fn slot_arena_isolates_sequences() {
        let mut a = SlotKvArena::new(1, 4, 2, 2, 8);
        let s0 = a.acquire().unwrap();
        let s1 = a.acquire().unwrap();
        a.layer_mut(s0, 0).append(&[1.0; 8], &[2.0; 8]);
        a.advance(s0, 1);
        assert_eq!(a.pos(s0), 1);
        assert_eq!(a.pos(s1), 0);
        assert_eq!(a.layer(s0, 0).len(), 1);
        assert_eq!(a.layer(s1, 0).len(), 0);
        // releasing s0 clears its content but keeps s1 intact
        a.release(s0);
        assert_eq!(a.layer(s0, 0).len(), 0);
        assert!(!a.in_use(s0) && a.in_use(s1));
    }

    #[test]
    fn slot_matches_standalone_cache_bitwise() {
        // A slot fed the same tokens as a standalone LayerKvCache holds
        // byte-identical content — the property batched decode rests on.
        let mut arena = SlotKvArena::new(1, 4, 2, 2, 16);
        let slot = arena.acquire().unwrap();
        let mut lone = LayerKvCache::with_capacity(4, 2, 16);
        for t in 0..5 {
            let k: Vec<f32> = (0..8).map(|i| ((i + t) as f32 * 0.23).sin()).collect();
            let v: Vec<f32> = (0..8).map(|i| ((i * t + 2) as f32 * 0.19).cos()).collect();
            arena.layer_mut(slot, 0).append(&k, &v);
            arena.advance(slot, 1);
            lone.append(&k, &v);
        }
        assert_eq!(*arena.layer(slot, 0), lone);
    }

    #[test]
    #[should_panic(expected = "overflows capacity")]
    fn slot_arena_rejects_capacity_overflow() {
        let mut a = SlotKvArena::new(1, 4, 1, 1, 2);
        let s = a.acquire().unwrap();
        a.advance(s, 3);
    }

    #[test]
    #[should_panic(expected = "not in use")]
    fn releasing_free_slot_panics() {
        let mut a = SlotKvArena::new(1, 4, 1, 1, 2);
        a.release(0);
    }

    #[test]
    fn slot_arena_byte_accounting_counts_live_tokens_only() {
        let mut a = SlotKvArena::new(2, 4, 2, 2, 8);
        assert_eq!(a.byte_len(), 0);
        let s = a.acquire().unwrap();
        for l in 0..2 {
            a.layer_mut(s, l).append(&[0.5; 8], &[0.5; 8]);
        }
        a.advance(s, 1);
        // 1 token × 2 layers × (8 + 8) int8 bytes
        assert_eq!(a.byte_len(), 32);
    }

    #[test]
    fn clear_retains_arena_allocation() {
        let mut c = LayerKvCache::with_capacity(4, 2, 8);
        c.append(&[1.0; 8], &[2.0; 8]);
        let cap = c.capacity();
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.byte_len(), 0);
        assert_eq!(c.capacity(), cap);
        // reusable after clear
        c.append(&[3.0; 8], &[4.0; 8]);
        assert_eq!(c.len(), 1);
    }
}
