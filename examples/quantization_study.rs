//! Quantization study: what do the int8 shortcuts cost in model quality?
//!
//! The paper adopts SmoothQuant W8A8 for both the accelerator and the GPU
//! baseline and sends int8 datapacks over the ring. This example measures
//! teacher-forced perplexity under each choice on the functional model:
//! the exact-payload ring must match the single-node reference to the last
//! bit, and the int8 ring payloads should cost almost nothing.
//!
//! ```text
//! cargo run --release --example quantization_study
//! ```

use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::model::eval::{log_prob, Perplexity};
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::ModelConfig;

/// Anything that can prefill a prompt and then decode token by token.
trait LmScorer {
    fn do_prefill(&mut self, prompt: &[u32]) -> Vec<f32>;
    fn do_step(&mut self, token: u32) -> Vec<f32>;
}

struct Single(Gpt2Model);
impl LmScorer for Single {
    fn do_prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        self.0.prefill(prompt)
    }
    fn do_step(&mut self, token: u32) -> Vec<f32> {
        self.0.decode_step(token)
    }
}

struct BatchedPrefill(Gpt2Model);
impl LmScorer for BatchedPrefill {
    fn do_prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        self.0.prefill_batched(prompt)
    }
    fn do_step(&mut self, token: u32) -> Vec<f32> {
        self.0.decode_step(token)
    }
}

struct Ring(DistributedGpt2);
impl LmScorer for Ring {
    fn do_prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        self.0.prefill(prompt)
    }
    fn do_step(&mut self, token: u32) -> Vec<f32> {
        self.0.decode_step(token)
    }
}

/// Teacher-forced perplexity over `tokens`.
fn score(scorer: &mut dyn LmScorer, tokens: &[u32]) -> f64 {
    let mut ppl = Perplexity::new();
    let mut logits = scorer.do_prefill(&tokens[..1]);
    for &next in &tokens[1..] {
        ppl.add(&logits, next);
        logits = scorer.do_step(next);
    }
    ppl.perplexity()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig::tiny();
    let reference = Gpt2Model::synthetic(&cfg, 77);
    let tokens: Vec<u32> = (0..48).map(|i| (i * 53 % 256) as u32).collect();

    let base = score(&mut Single(reference.clone()), &tokens);
    println!("single-node reference          ppl = {base:.3}");
    println!(
        "(vocab {} — a fresh random model sits near the uniform bound)",
        cfg.vocab
    );

    let mut exact = Ring(DistributedGpt2::new(&reference, 4, RingMode::Exact)?);
    let e = score(&mut exact, &tokens);
    println!(
        "4-node ring, exact payloads    ppl = {e:.3}  (Δ {:+.2e})",
        e - base
    );
    assert_eq!(e, base, "exact ring must be bit-identical");

    let mut quant = Ring(DistributedGpt2::new(&reference, 4, RingMode::Quantized)?);
    let q = score(&mut quant, &tokens);
    println!(
        "4-node ring, int8 datapacks    ppl = {q:.3}  ({:+.2}% vs reference)",
        (q / base - 1.0) * 100.0
    );

    let b = score(&mut BatchedPrefill(reference.clone()), &tokens);
    println!(
        "batched prefill (GEMM path)    ppl = {b:.3}  (Δ {:+.2e})",
        b - base
    );
    assert_eq!(b, base, "batched prefill must be bit-identical");

    // a sanity anchor: a confident hand-built distribution
    let mut sharp = vec![-10.0f32; 8];
    sharp[3] = 10.0;
    println!(
        "\n(log-prob sanity: certain prediction = {:.4} nats, uniform-8 = {:.4})",
        log_prob(&sharp, 3),
        log_prob(&[0.0; 8], 0)
    );
    println!(
        "\nThe ring's int8 datapacks and the batched GEMM prefill preserve\n\
         model quality: the exact paths are bit-identical and the quantized\n\
         ring moves perplexity by well under a percent."
    );
    Ok(())
}
