//! Chatbot scenario: short prompt, long generation (`[32:512]`) — the
//! regime where the paper shows LoopLynx "great advantages compared with
//! GPU implementations in scenarios like … chatbots which require long
//! text generation".
//!
//! ```text
//! cargo run --release --example chatbot
//! ```

use looplynx::baselines::gpu::A100Model;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let (prefill, decode) = (32usize, 512usize);
    println!("chatbot workload: [{prefill}:{decode}] on {model}\n");

    let gpu = A100Model::paper_baseline().generation(&model, prefill, decode);
    println!(
        "{:<22} {:>9} {:>12} {:>10} {:>10}",
        "system", "total ms", "ms/token", "joules", "tok/J"
    );
    println!(
        "{:<22} {:>9.0} {:>12.2} {:>10.1} {:>10.2}",
        "Nvidia A100",
        gpu.total_ms,
        gpu.decode_ms / decode as f64,
        gpu.energy_joules,
        gpu.tokens_per_joule
    );

    for nodes in [1usize, 2, 4] {
        let arch = ArchConfig::builder().nodes(nodes).build()?;
        let engine = LoopLynx::new(model.clone(), arch)?;
        let r = engine.simulate_generation(prefill, decode);
        println!(
            "{:<22} {:>9.0} {:>12.2} {:>10.1} {:>10.2}   ({:.2}x vs A100, {:.1} W)",
            format!("LoopLynx {nodes}-node"),
            r.total_ms(),
            r.decode_ms_per_token(),
            r.energy.joules,
            r.energy.tokens_per_joule,
            gpu.total_ms / r.total_ms(),
            r.energy.watts,
        );
    }

    println!(
        "\nThe FPGA wins long generations: decode is serial, so the GPU pays\n\
         per-kernel launch overhead on every token while the dataflow design\n\
         streams weights at full HBM bandwidth."
    );
    Ok(())
}
