//! Quantized key/value cache with head-wise granularity.
//!
//! "During the prefill stage, the LLM processes user input prompts to fill
//! the KV cache … during decoding, the accumulated KV cache avoids
//! repeatedly … recalculating previous tokens" (paper Section III). The
//! cache stores int8 keys/values with one scale per *head* per token —
//! matching the paper's "head-wise partitioning approach for the KV cache":
//! because quantization granularity aligns with the partition boundary, a
//! node holding a subset of heads stores bit-identical data to the
//! corresponding slice of a single-node cache.

use serde::{Deserialize, Serialize};

use looplynx_tensor::quant::{quantize_vec, QuantizedVector};

/// KV cache of one transformer layer (or one node's head-slice of it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerKvCache {
    d_head: usize,
    /// `keys[token][head]`.
    keys: Vec<Vec<QuantizedVector>>,
    values: Vec<Vec<QuantizedVector>>,
}

impl LayerKvCache {
    /// Creates an empty cache for vectors divisible into `d_head` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `d_head` is zero.
    pub fn new(d_head: usize) -> Self {
        assert!(d_head > 0, "d_head must be positive");
        LayerKvCache {
            d_head,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Head dimension.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Heads per cached vector (0 when empty).
    pub fn heads(&self) -> usize {
        self.keys.first().map_or(0, Vec::len)
    }

    /// Quantizes and appends one token's key and value vectors, one scale
    /// per `d_head` chunk.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` lengths differ, are not multiples of `d_head`, or
    /// change between calls.
    pub fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), v.len(), "key/value length mismatch");
        assert_eq!(k.len() % self.d_head, 0, "vector not divisible by d_head");
        if let Some(first) = self.keys.first() {
            assert_eq!(
                k.len() / self.d_head,
                first.len(),
                "head count changed between appends"
            );
        }
        let quantize_heads = |x: &[f32]| {
            x.chunks_exact(self.d_head)
                .map(quantize_vec)
                .collect::<Vec<_>>()
        };
        self.keys.push(quantize_heads(k));
        self.values.push(quantize_heads(v));
    }

    /// Cached key of token `t`, head `h` (local head index).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn key_head(&self, t: usize, h: usize) -> &QuantizedVector {
        &self.keys[t][h]
    }

    /// Cached value of token `t`, head `h` (local head index).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value_head(&self, t: usize, h: usize) -> &QuantizedVector {
        &self.values[t][h]
    }

    /// Int8 bytes held by this layer's cache (keys + values).
    pub fn byte_len(&self) -> usize {
        let per_token: usize = self
            .keys
            .first()
            .map_or(0, |heads| heads.iter().map(QuantizedVector::byte_len).sum());
        2 * per_token * self.keys.len()
    }

    /// Clears all cached tokens.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
    }
}

/// KV caches of every layer of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates caches for `layers` layers with the given head dimension.
    pub fn new(layers: usize, d_head: usize) -> Self {
        KvCache {
            layers: (0..layers).map(|_| LayerKvCache::new(d_head)).collect(),
        }
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// Cache of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &LayerKvCache {
        &self.layers[l]
    }

    /// Mutable cache of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer_mut(&mut self, l: usize) -> &mut LayerKvCache {
        &mut self.layers[l]
    }

    /// Cached sequence length (tokens in layer 0; all layers stay in step).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Total int8 bytes across all layers.
    pub fn byte_len(&self) -> usize {
        self.layers.iter().map(LayerKvCache::byte_len).sum()
    }

    /// Clears every layer.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back_per_head() {
        let mut c = LayerKvCache::new(2);
        c.append(&[1.0, -1.0, 10.0, 20.0], &[0.5, 0.25, -4.0, 8.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.heads(), 2);
        let k0 = c.key_head(0, 0).dequantize();
        assert!((k0[0] - 1.0).abs() < 0.02);
        let k1 = c.key_head(0, 1).dequantize();
        assert!((k1[1] - 20.0).abs() < 0.2);
        let v1 = c.value_head(0, 1).dequantize();
        assert!((v1[0] + 4.0).abs() < 0.1);
    }

    #[test]
    fn per_head_scales_isolate_outliers() {
        // A huge head 1 must not destroy head 0's precision.
        let mut c = LayerKvCache::new(2);
        c.append(&[0.01, -0.02, 500.0, 250.0], &[0.0; 4]);
        let k0 = c.key_head(0, 0).dequantize();
        assert!((k0[1] + 0.02).abs() < 0.001, "head 0 crushed: {k0:?}");
    }

    #[test]
    fn head_slice_matches_full_cache() {
        // The property the paper's head-wise partitioning relies on: a
        // cache fed only heads 2..4 equals the corresponding slice of the
        // full cache.
        let d_head = 4;
        let full_k: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).sin()).collect();
        let full_v: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut full = LayerKvCache::new(d_head);
        full.append(&full_k, &full_v);
        let mut part = LayerKvCache::new(d_head);
        part.append(&full_k[8..16], &full_v[8..16]);
        for h in 0..2 {
            assert_eq!(part.key_head(0, h), full.key_head(0, h + 2));
            assert_eq!(part.value_head(0, h), full.value_head(0, h + 2));
        }
    }

    #[test]
    fn byte_accounting_is_int8() {
        let mut c = LayerKvCache::new(8);
        for _ in 0..5 {
            c.append(&[0.1; 16], &[0.2; 16]);
        }
        // 5 tokens × (16 + 16) bytes
        assert_eq!(c.byte_len(), 160);
    }

    #[test]
    #[should_panic(expected = "head count changed")]
    fn dimension_change_panics() {
        let mut c = LayerKvCache::new(4);
        c.append(&[1.0; 4], &[1.0; 4]);
        c.append(&[1.0; 8], &[1.0; 8]);
    }

    #[test]
    #[should_panic(expected = "not divisible by d_head")]
    fn indivisible_vector_panics() {
        let mut c = LayerKvCache::new(4);
        c.append(&[1.0; 6], &[1.0; 6]);
    }

    #[test]
    fn model_cache_tracks_layers() {
        let mut c = KvCache::new(3, 8);
        assert_eq!(c.layers(), 3);
        assert_eq!(c.seq_len(), 0);
        for l in 0..3 {
            c.layer_mut(l).append(&[0.0; 8], &[0.0; 8]);
        }
        assert_eq!(c.seq_len(), 1);
        assert_eq!(c.byte_len(), 3 * 16);
        c.clear();
        assert_eq!(c.seq_len(), 0);
        assert_eq!(c.byte_len(), 0);
    }
}
