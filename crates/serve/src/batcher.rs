//! The serving schedulers: continuous batching and the sequential
//! baseline, generic over the execution substrate.
//!
//! Scheduling policy lives here; *how* a prefill or a batched decode
//! iteration executes lives behind
//! [`looplynx_core::backend::InferenceBackend`]:
//!
//! * [`serve_continuous_on`] / [`serve_sequential_on`] — the schedulers,
//!   generic over any backend. On the
//!   [`looplynx_core::backend::SimBackend`] they time the cycle-accurate
//!   accelerator model; on the
//!   [`looplynx_core::backend::FunctionalBackend`] they drive real W8A8
//!   inference, and the report carries every request's generated tokens.
//! * [`serve_continuous`] / [`serve_sequential`] — convenience wrappers
//!   pinning the sim backend (the pre-trait API, reports unchanged).
//!
//! Under continuous batching, new requests are admitted into the decode
//! loop between iterations (prefill runs once at admission), and each
//! decode iteration advances every active request by one token while
//! sharing every weight pass. A request's first output token is sampled
//! from its prefill logits, so TTFT = queue wait + prefill; the remaining
//! `decode_tokens - 1` tokens each take one decode iteration. Admission
//! is strictly FIFO in arrival order, which makes starvation impossible:
//! every admitted request stays resident until it completes, and the
//! queue head is always admitted first.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use looplynx_core::backend::{InferenceBackend, SimBackend};
use looplynx_core::engine::LoopLynx;
use looplynx_sim::stats::Summary;

use crate::metrics::{GeneratedOutput, ServingReport};
use crate::request::{Request, RequestMetrics};

/// Serving-policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    max_batch: usize,
}

impl ServeConfig {
    /// Creates a configuration with the given decode-batch ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or exceeds
    /// [`looplynx_core::config::MAX_WEIGHT_SHARING_BATCH`] (the on-chip
    /// activation-buffer bound shared with the batched-prefill extension).
    pub fn new(max_batch: usize) -> Self {
        assert!(
            (1..=looplynx_core::config::MAX_WEIGHT_SHARING_BATCH).contains(&max_batch),
            "max_batch must be 1..={} (bounded by on-chip activation buffer)",
            looplynx_core::config::MAX_WEIGHT_SHARING_BATCH
        );
        ServeConfig { max_batch }
    }

    /// Maximum concurrent requests in one decode iteration (the backend's
    /// own slot capacity caps this further).
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

impl Default for ServeConfig {
    /// Eight concurrent requests — deep enough to amortize weight
    /// streaming, shallow enough for the activation buffer.
    fn default() -> Self {
        ServeConfig::new(8)
    }
}

/// A request resident in the decode loop.
#[derive(Debug)]
struct Active {
    req: Request,
    /// Backend slot the request occupies.
    slot: usize,
    first_token_ms: f64,
    /// Tokens emitted so far (token-producing backends only).
    tokens: Vec<u32>,
    /// Output tokens emitted so far (≥ 1 — the prefill emits the first).
    produced: usize,
}

/// Sorts requests by arrival (stable: ties keep workload order) and
/// validates them against the backend's sequence bound.
fn admission_queue<B: InferenceBackend>(backend: &B, requests: &[Request]) -> VecDeque<Request> {
    let max_seq = backend.max_seq();
    for r in requests {
        assert!(
            r.peak_context() <= max_seq,
            "request {}: {} prompt + {} output tokens exceed max_seq {max_seq}",
            r.id,
            r.prefill_tokens,
            r.decode_tokens
        );
    }
    let mut sorted: Vec<Request> = requests.to_vec();
    // total_cmp: a total order even on NaN arrival times, so the sort
    // itself can never panic.
    sorted.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    sorted.into()
}

/// Completes a request: releases its slot and records metrics + tokens.
fn finish<B: InferenceBackend>(
    backend: &mut B,
    done: &mut Vec<RequestMetrics>,
    outputs: &mut Vec<GeneratedOutput>,
    active: Active,
    completion_ms: f64,
) {
    // The scheduler releases only slots it owns; on these fair-weather
    // paths a failed release means the accounting is already broken, and
    // the debug assertion (not a release-path panic) pins that contract.
    let released = backend.release(active.slot);
    debug_assert!(
        released.is_ok(),
        "scheduler released a non-resident slot: {released:?}"
    );
    done.push(RequestMetrics {
        id: active.req.id,
        arrival_ms: active.req.arrival_ms,
        first_token_ms: active.first_token_ms,
        completion_ms,
        prefill_tokens: active.req.prefill_tokens,
        decode_tokens: active.req.decode_tokens,
    });
    if !active.tokens.is_empty() {
        outputs.push(GeneratedOutput {
            id: active.req.id,
            tokens: active.tokens,
        });
    }
}

/// Serves the workload with continuous batching on any backend.
///
/// Between decode iterations the scheduler admits every arrived request
/// (FIFO) up to `min(cfg.max_batch(), backend.capacity())` residents;
/// admission runs the prompt through the backend's prefill and emits the
/// request's first token. Each decode iteration then advances all
/// residents by one token on the shared weight stream. When the loop is
/// empty the clock jumps to the next arrival.
///
/// The clock advances by whatever the backend reports — simulated
/// accelerator milliseconds on the sim backend, measured host wall-clock
/// on the functional backend — so latency percentiles are consistent
/// within one backend but not comparable across backends.
///
/// # Panics
///
/// Panics if any request would overflow the backend's `max_seq`.
pub fn serve_continuous_on<B: InferenceBackend>(
    backend: &mut B,
    requests: &[Request],
    cfg: &ServeConfig,
) -> ServingReport {
    let mut queue = admission_queue(backend, requests);
    let mut active: Vec<Active> = Vec::new();
    let mut done: Vec<RequestMetrics> = Vec::new();
    let mut outputs: Vec<GeneratedOutput> = Vec::new();
    let mut occupancy = Summary::new();
    let mut iterations = 0u64;
    let mut clock = 0.0f64;
    let max_batch = cfg.max_batch().min(backend.capacity());

    while !queue.is_empty() || !active.is_empty() {
        // Idle: jump to the next arrival.
        if active.is_empty() {
            if let Some(front) = queue.front() {
                clock = clock.max(front.arrival_ms);
            }
        }
        // Admit every arrived request, FIFO, up to the batch ceiling.
        while active.len() < max_batch && queue.front().is_some_and(|r| r.arrival_ms <= clock) {
            let Some(req) = queue.pop_front() else {
                break;
            };
            let start = clock.max(req.arrival_ms);
            // These schedulers assume a well-behaved backend (the gateway
            // is the fault-tolerant path): admission respects capacity and
            // prompts are pre-validated, so errors here are caller bugs —
            // except resource pressure on a paged backend, where a
            // resident will free pages on completion: hold the request
            // and decode on.
            let outcome = match backend.prefill(req.prefill_tokens, req.prompt.as_deref(), req.id) {
                Ok(o) => o,
                Err(e) if e.is_resource_pressure() && !active.is_empty() => {
                    queue.push_front(req);
                    break;
                }
                // lint: allow(panic_free) — documented `# Panics` contract: fair-weather scheduler; fault-tolerant callers use serve_gateway_on
                Err(e) => panic!("prefill of request {} failed: {e}", req.id),
            };
            clock = start + outcome.elapsed_ms;
            let entry = Active {
                slot: outcome.slot,
                first_token_ms: clock,
                tokens: outcome.first_token.into_iter().collect(),
                produced: 1,
                req,
            };
            if entry.req.decode_tokens == 1 {
                finish(backend, &mut done, &mut outputs, entry, clock);
            } else {
                active.push(entry);
            }
        }
        if active.is_empty() {
            continue;
        }

        // One decode iteration: every resident gains one token.
        let slots: Vec<usize> = active.iter().map(|a| a.slot).collect();
        let outcome = backend
            .decode_batch(&slots)
            // lint: allow(panic_free) — documented `# Panics` contract: fair-weather scheduler; fault-tolerant callers use serve_gateway_on
            .expect("decode of resident slots failed");
        clock += outcome.elapsed_ms;
        iterations += 1;
        occupancy.add(active.len() as f64);
        for (i, a) in active.iter_mut().enumerate() {
            a.produced += 1;
            if let Some(tokens) = &outcome.tokens {
                a.tokens.push(tokens[i]);
            }
        }
        let mut still_active = Vec::with_capacity(active.len());
        for a in active {
            if a.produced == a.req.decode_tokens {
                finish(backend, &mut done, &mut outputs, a, clock);
            } else {
                still_active.push(a);
            }
        }
        active = still_active;
    }
    ServingReport::with_outputs(done, outputs, iterations, occupancy)
}

/// Serves the workload one request at a time on any backend (the baseline
/// continuous batching is measured against): each request runs prefill
/// and its full decode before the next request starts.
///
/// # Panics
///
/// Panics if any request would overflow the backend's `max_seq`.
pub fn serve_sequential_on<B: InferenceBackend>(
    backend: &mut B,
    requests: &[Request],
) -> ServingReport {
    let queue = admission_queue(backend, requests);
    let mut done: Vec<RequestMetrics> = Vec::new();
    let mut outputs: Vec<GeneratedOutput> = Vec::new();
    let mut occupancy = Summary::new();
    let mut iterations = 0u64;
    let mut clock = 0.0f64;

    for req in queue {
        let start = clock.max(req.arrival_ms);
        let outcome = backend
            .prefill(req.prefill_tokens, req.prompt.as_deref(), req.id)
            // lint: allow(panic_free) — documented `# Panics` contract: fair-weather scheduler; fault-tolerant callers use serve_gateway_on
            .unwrap_or_else(|e| panic!("prefill of request {} failed: {e}", req.id));
        clock = start + outcome.elapsed_ms;
        let mut entry = Active {
            slot: outcome.slot,
            first_token_ms: clock,
            tokens: outcome.first_token.into_iter().collect(),
            produced: 1,
            req,
        };
        // Decode passes for tokens 2..=decode_tokens, one at a time on the
        // same cost model as the batched path (a singleton batch is
        // cycle-identical to a plain decode token).
        for _ in 1..entry.req.decode_tokens {
            let outcome = backend
                .decode_batch(&[entry.slot])
                // lint: allow(panic_free) — documented `# Panics` contract: fair-weather scheduler; fault-tolerant callers use serve_gateway_on
                .expect("decode of resident slot failed");
            clock += outcome.elapsed_ms;
            iterations += 1;
            occupancy.add(1.0);
            if let Some(tokens) = &outcome.tokens {
                entry.tokens.push(tokens[0]);
            }
        }
        finish(backend, &mut done, &mut outputs, entry, clock);
    }
    ServingReport::with_outputs(done, outputs, iterations, occupancy)
}

/// [`serve_continuous_on`] pinned to the cycle-accurate sim backend — the
/// original serving API, reports unchanged by the backend refactor.
///
/// # Panics
///
/// Panics if any request would overflow the model's `max_seq`.
pub fn serve_continuous(
    engine: &LoopLynx,
    requests: &[Request],
    cfg: &ServeConfig,
) -> ServingReport {
    serve_continuous_on(&mut SimBackend::new(engine), requests, cfg)
}

/// [`serve_sequential_on`] pinned to the cycle-accurate sim backend.
///
/// # Panics
///
/// Panics if any request would overflow the model's `max_seq`.
pub fn serve_sequential(engine: &LoopLynx, requests: &[Request]) -> ServingReport {
    serve_sequential_on(&mut SimBackend::new(engine), requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
    use looplynx_core::config::ArchConfig;
    use looplynx_core::engine::DistributedGpt2;
    use looplynx_core::router::RingMode;
    use looplynx_model::config::ModelConfig;
    use looplynx_model::generate::Autoregressive;
    use looplynx_model::gpt2::Gpt2Model;
    use looplynx_model::sampler::Sampler;

    use crate::arrival::ArrivalProcess;

    fn engine(nodes: usize) -> LoopLynx {
        LoopLynx::new(
            ModelConfig::gpt2_medium(),
            ArchConfig::builder().nodes(nodes).build().unwrap(),
        )
        .unwrap()
    }

    fn saturating_workload(n: usize) -> Vec<Request> {
        // Everything arrives at t=0: maximal queueing pressure.
        ArrivalProcess::Trace(vec![0.0; n]).workload(n, &[(16, 8)])
    }

    #[test]
    fn all_requests_complete_with_exact_token_counts() {
        let e = engine(2);
        let reqs = saturating_workload(6);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert_eq!(report.completed(), 6);
        assert_eq!(report.total_tokens(), 6 * 8);
        assert!(report.outputs.is_empty(), "sim backend produces no tokens");
        for m in &report.requests {
            assert!(m.first_token_ms >= m.arrival_ms);
            assert!(m.completion_ms >= m.first_token_ms);
        }
    }

    #[test]
    fn continuous_beats_sequential_under_load() {
        let e = engine(2);
        let reqs = saturating_workload(6);
        let batched = serve_continuous(&e, &reqs, &ServeConfig::default());
        let serial = serve_sequential(&e, &reqs);
        assert!(
            batched.tokens_per_second() > serial.tokens_per_second(),
            "batched {} vs sequential {}",
            batched.tokens_per_second(),
            serial.tokens_per_second()
        );
        assert!(batched.batch_occupancy.mean() > 1.0);
    }

    #[test]
    fn max_batch_one_equals_sequential() {
        // With a batch ceiling of 1 the continuous scheduler degenerates to
        // the sequential baseline exactly.
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0, 3.0, 9.0]).workload(3, &[(12, 5), (8, 3)]);
        let a = serve_continuous(&e, &reqs, &ServeConfig::new(1));
        let b = serve_sequential(&e, &reqs);
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.id, y.id);
            assert!((x.first_token_ms - y.first_token_ms).abs() < 1e-9);
            assert!((x.completion_ms - y.completion_ms).abs() < 1e-9);
        }
    }

    #[test]
    fn idle_engine_waits_for_arrivals() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![1000.0]).workload(1, &[(8, 4)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert!(report.requests[0].first_token_ms >= 1000.0);
        // TTFT excludes the idle wait before arrival
        assert!(report.requests[0].ttft_ms() < 500.0);
    }

    #[test]
    fn single_token_requests_complete_at_prefill() {
        let e = engine(1);
        let reqs = ArrivalProcess::Trace(vec![0.0]).workload(1, &[(8, 1)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::default());
        assert_eq!(report.decode_iterations, 0);
        let m = &report.requests[0];
        assert_eq!(m.first_token_ms, m.completion_ms);
    }

    #[test]
    fn fifo_admission_preserves_arrival_order_of_first_tokens() {
        let e = engine(2);
        let reqs = ArrivalProcess::Trace(vec![0.0, 0.0, 0.0, 50.0, 60.0]).workload(5, &[(16, 12)]);
        let report = serve_continuous(&e, &reqs, &ServeConfig::new(2));
        let mut by_id: Vec<&RequestMetrics> = report.requests.iter().collect();
        by_id.sort_by_key(|m| m.id);
        for pair in by_id.windows(2) {
            assert!(
                pair[0].first_token_ms <= pair[1].first_token_ms,
                "FIFO violated: {} after {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn oversized_request_rejected() {
        let e = engine(1);
        let reqs = vec![Request::new(0, 0.0, 1000, 100)];
        let _ = serve_continuous(&e, &reqs, &ServeConfig::default());
    }

    fn functional_backend(slots: usize) -> (Gpt2Model, FunctionalBackend) {
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let dist = DistributedGpt2::with_slots(&model, 2, RingMode::Exact, slots, 48).unwrap();
        (model, FunctionalBackend::new(dist, SamplerSpec::Greedy))
    }

    #[test]
    fn functional_serving_produces_per_request_tokens() {
        let (model, mut backend) = functional_backend(4);
        let reqs = ArrivalProcess::Trace(vec![0.0; 5]).workload_with_prompts(
            5,
            &[(6, 5), (4, 7)],
            model.config().vocab,
            0xFEED,
        );
        let report = serve_continuous_on(&mut backend, &reqs, &ServeConfig::new(4));
        assert_eq!(report.completed(), 5);
        assert_eq!(report.outputs.len(), 5);
        // Every request's token stream is byte-identical to generating it
        // alone on the reference model.
        for req in &reqs {
            let tokens = report.output_tokens(req.id).expect("tokens recorded");
            assert_eq!(tokens.len(), req.decode_tokens);
            let mut lone = model.clone();
            let expected = lone.generate(
                req.prompt.as_ref().unwrap(),
                req.decode_tokens,
                &mut Sampler::greedy(),
            );
            assert_eq!(tokens, expected, "request {} diverged", req.id);
        }
    }

    #[test]
    fn functional_sequential_matches_continuous_tokens() {
        // Scheduling policy must never change what any request generates.
        let (model, mut cb) = functional_backend(4);
        let reqs = ArrivalProcess::Trace(vec![0.0, 0.5, 1.0, 1.5]).workload_with_prompts(
            4,
            &[(5, 6)],
            model.config().vocab,
            7,
        );
        let batched = serve_continuous_on(&mut cb, &reqs, &ServeConfig::new(4));
        let (_, mut seq) = functional_backend(4);
        let serial = serve_sequential_on(&mut seq, &reqs);
        for req in &reqs {
            assert_eq!(
                batched.output_tokens(req.id),
                serial.output_tokens(req.id),
                "request {} tokens depend on schedule",
                req.id
            );
        }
    }

    #[test]
    fn page_pressure_holds_admission_without_failing() {
        // 8 slots over a 12-page pool (4-token pages): each (7, 2)
        // request holds exactly 2 pages from prefill through completion,
        // so at most 6 can be resident. Admission must hold the rest
        // until a resident completes — and nothing may panic or diverge.
        let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 2024);
        let dist =
            DistributedGpt2::with_paged_slots(&model, 2, RingMode::Exact, 8, 48, 4, 12).unwrap();
        let mut backend = FunctionalBackend::new(dist, SamplerSpec::Greedy);
        let reqs = ArrivalProcess::Trace(vec![0.0; 8]).workload_with_prompts(
            8,
            &[(7, 2)],
            model.config().vocab,
            15,
        );
        let report = serve_continuous_on(&mut backend, &reqs, &ServeConfig::new(8));
        assert_eq!(report.completed(), 8);
        assert!(
            report.batch_occupancy.max().unwrap_or(0.0) <= 6.0,
            "12 pages cannot hold more than 6 two-page residents"
        );
        for req in &reqs {
            let mut lone = model.clone();
            let expected = lone.generate(
                req.prompt.as_ref().unwrap(),
                req.decode_tokens,
                &mut Sampler::greedy(),
            );
            assert_eq!(
                report.output_tokens(req.id).expect("tokens recorded"),
                expected,
                "request {} diverged under page-pressure holds",
                req.id
            );
        }
    }

    #[test]
    fn backend_capacity_caps_admission() {
        // 2 slots, batch ceiling 8: occupancy can never exceed 2.
        let (model, mut backend) = functional_backend(2);
        let reqs = ArrivalProcess::Trace(vec![0.0; 6]).workload_with_prompts(
            6,
            &[(4, 6)],
            model.config().vocab,
            3,
        );
        let report = serve_continuous_on(&mut backend, &reqs, &ServeConfig::new(8));
        assert_eq!(report.completed(), 6);
        assert!(report.batch_occupancy.max().unwrap_or(0.0) <= 2.0);
    }
}
