//! Offered-load serving sweep: tokens/s and latency percentiles vs
//! Poisson arrival rate, continuous batching against the sequential
//! baseline, for 1/2/4-node rings.
use looplynx_bench::experiments;
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    print!("{}", experiments::render_offered_load_sweep(&model));
}
