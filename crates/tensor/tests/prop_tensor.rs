//! Property-based tests for the quantized tensor substrate.

use proptest::prelude::*;

use looplynx_tensor::activation::{causal_mask, softmax};
use looplynx_tensor::linear::{gemv_f32, gemv_i32, QuantLinear};
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::{layernorm, residual_add, LayerNormParams};
use looplynx_tensor::quant::{
    quantize_vec, scale_for, smooth_weights_in_place, smoothquant_factors,
};

fn arb_f32_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-100i32..100).prop_map(|x| x as f32 / 10.0), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization round-trip error is bounded by half a quantization step.
    #[test]
    fn quant_roundtrip_bounded(xs in arb_f32_vec(1..128)) {
        let q = quantize_vec(&xs);
        let back = q.dequantize();
        let half_step = q.scale() / 2.0 + 1e-6;
        for (x, y) in xs.iter().zip(&back) {
            prop_assert!((x - y).abs() <= half_step, "{x} vs {y}");
        }
    }

    /// Quantized values never exceed ±127 whatever the input.
    #[test]
    fn quant_saturates(xs in prop::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 1..64)) {
        let q = quantize_vec(&xs);
        prop_assert!(q.data().iter().all(|&v| (-127..=127).contains(&(v as i32))));
        prop_assert!(q.scale() > 0.0);
    }

    /// scale_for maps the absmax onto exactly 127 steps.
    #[test]
    fn scale_for_is_tight(absmax in 1e-3f32..1e3) {
        let s = scale_for(absmax);
        prop_assert!((absmax / s - 127.0).abs() < 1e-3);
    }

    /// Integer GEMV is additive in the activation: W(x + y) = Wx + Wy (in
    /// i32 exact arithmetic, no overflow for these ranges).
    #[test]
    fn gemv_is_linear(
        rows in 1usize..8,
        cols in 1usize..16,
        seed in any::<u64>(),
    ) {
        let w = Matrix::from_fn(rows, cols, |r, c| {
            (((seed >> (r % 13)) as usize + r * 31 + c * 7) % 127) as i8 - 63
        });
        let x: Vec<i8> = (0..cols).map(|i| ((i * 11 + 3) % 60) as i8 - 30).collect();
        let y: Vec<i8> = (0..cols).map(|i| ((i * 17 + 5) % 60) as i8 - 30).collect();
        let xy: Vec<i8> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let wx = gemv_i32(&w, &x).unwrap();
        let wy = gemv_i32(&w, &y).unwrap();
        let wxy = gemv_i32(&w, &xy).unwrap();
        for i in 0..rows {
            prop_assert_eq!(wxy[i], wx[i] + wy[i]);
        }
    }

    /// A quantized linear tracks its f32 reference within the error bound
    /// implied by the quantization steps.
    #[test]
    fn quant_linear_tracks_reference(
        rows in 1usize..8,
        cols in 2usize..32,
        seed in 0u64..1000,
    ) {
        let w = Matrix::from_fn(rows, cols, |r, c| {
            (((seed as usize + r * 131 + c * 17) % 200) as f32 / 100.0 - 1.0) * 0.1
        });
        let bias: Vec<f32> = (0..rows).map(|i| i as f32 * 0.01).collect();
        let lin = QuantLinear::from_f32(&w, &bias).unwrap();
        let x: Vec<f32> = (0..cols).map(|i| ((seed as usize + i * 7) % 100) as f32 / 100.0 - 0.5).collect();
        let got = lin.forward(&quantize_vec(&x));
        let expect: Vec<f32> = gemv_f32(&w, &x)
            .unwrap()
            .iter()
            .zip(&bias)
            .map(|(a, b)| a + b)
            .collect();
        // error bound: ~(cols · step_w · |x|max + cols · step_x · |w|max)
        let tol = 0.02 * cols as f32 * 0.1 + 0.01;
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < tol, "{g} vs {e} (tol {tol})");
        }
    }

    /// Row sharding a linear then stitching outputs equals the full layer.
    #[test]
    fn shard_stitching_exact(parts in prop::sample::select(vec![1usize, 2, 4, 8]), seed in 0u64..500) {
        let rows = 16usize;
        let cols = 8usize;
        let w = Matrix::from_fn(rows, cols, |r, c| {
            ((seed as usize + r * 13 + c * 29) % 100) as f32 / 50.0 - 1.0
        });
        let bias: Vec<f32> = (0..rows).map(|i| i as f32).collect();
        let lin = QuantLinear::from_f32(&w, &bias).unwrap();
        let x = quantize_vec(&(0..cols).map(|i| i as f32 / 8.0).collect::<Vec<_>>());
        let full = lin.forward(&x);
        let stitched: Vec<f32> = lin.shard_rows(parts).iter().flat_map(|s| s.forward(&x)).collect();
        prop_assert_eq!(full, stitched);
    }

    /// Softmax always produces a probability distribution.
    #[test]
    fn softmax_is_distribution(scores in arb_f32_vec(1..64)) {
        let w = softmax(&scores);
        prop_assert_eq!(w.len(), scores.len());
        prop_assert!(w.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        let sum: f32 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    /// Masked positions get exactly zero softmax weight.
    #[test]
    fn mask_zeroes_future(scores in arb_f32_vec(2..32), split in 1usize..31) {
        let mut s = scores;
        let valid = split.min(s.len() - 1).max(1);
        causal_mask(&mut s, valid);
        let w = softmax(&s);
        prop_assert!(w[valid..].iter().all(|&p| p == 0.0));
        let sum: f32 = w[..valid].iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Layernorm output always has ~zero mean and ~unit variance under
    /// identity affine parameters (for non-constant inputs).
    #[test]
    fn layernorm_normalizes(xs in arb_f32_vec(4..64)) {
        let spread = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - xs.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.5);
        let y = layernorm(&xs, &LayerNormParams::identity(xs.len()));
        let n = y.len() as f32;
        let mean: f32 = y.iter().sum::<f32>() / n;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    /// Residual addition commutes.
    #[test]
    fn residual_commutes(a in arb_f32_vec(1..32), seed in any::<u64>()) {
        let b: Vec<f32> = a.iter().enumerate()
            .map(|(i, _)| ((seed as usize + i) % 100) as f32 / 10.0)
            .collect();
        prop_assert_eq!(residual_add(&a, &b), residual_add(&b, &a));
    }

    /// SmoothQuant migration preserves the real-valued product.
    #[test]
    fn smoothquant_preserves_product(seed in 0u64..1000, alpha_pct in 0u32..=100) {
        let cols = 6usize;
        let rows = 4usize;
        let alpha = alpha_pct as f32 / 100.0;
        let mut w = Matrix::from_fn(rows, cols, |r, c| {
            ((seed as usize + r * 7 + c * 13) % 100) as f32 / 25.0 - 2.0
        });
        let x: Vec<f32> = (0..cols).map(|i| ((seed as usize + i * 3) % 64) as f32 / 8.0 + 0.1).collect();
        let reference = gemv_f32(&w, &x).unwrap();
        let factors = smoothquant_factors(&x.iter().map(|v| v.abs()).collect::<Vec<_>>(), &w.col_absmax(), alpha);
        let div = smooth_weights_in_place(&mut w, &factors);
        let x_s: Vec<f32> = x.iter().zip(&div).map(|(v, d)| v / d).collect();
        let migrated = gemv_f32(&w, &x_s).unwrap();
        for (a, b) in reference.iter().zip(&migrated) {
            prop_assert!((a - b).abs() < 1e-2 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }
}
