//! Ring-network model.
//!
//! LoopLynx nodes are "interconnected across multiple FPGAs using AXI-Stream
//! for ring connections"; the router "operates in simplex mode" and, with
//! `n` nodes, synchronization takes `n` rounds of buffer writing followed by
//! reading — in each round every node writes its datapacks to its successor
//! and reads from its predecessor, and an offset derived from the node id
//! places received datapacks so that "all buffers maintain consistent data"
//! after the final round (paper Fig. 6(c)).
//!
//! This module provides:
//!
//! * [`RingSpec`] — closed-form cycle counts for the all-gather used by the
//!   engine's timing model (peak 8.49 GB/s per link, as measured in the
//!   paper's simulation), and
//! * [`RingSim`] — a discrete-event simulation of the routers themselves,
//!   used by the test-suite to validate the closed form and the buffer
//!   consistency claim.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::engine::{Context, Engine, Process, ProcessId};
use crate::time::{Cycles, Frequency};

/// Static description of the accelerator ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSpec {
    nodes: usize,
    link_bytes_per_cycle: f64,
    hop_latency: Cycles,
}

impl RingSpec {
    /// Creates a ring of `nodes` accelerators.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the link bandwidth is not positive.
    pub fn new(nodes: usize, link_bytes_per_cycle: f64, hop_latency: Cycles) -> Self {
        assert!(nodes > 0, "ring needs at least one node");
        assert!(
            link_bytes_per_cycle.is_finite() && link_bytes_per_cycle > 0.0,
            "link bandwidth must be positive"
        );
        RingSpec {
            nodes,
            link_bytes_per_cycle,
            hop_latency,
        }
    }

    /// The paper's ring: peak 8.49 GB/s per link on the given kernel clock,
    /// with a small per-hop latency for the AXI-Stream register slices.
    pub fn paper_ring(nodes: usize, clock: Frequency) -> Self {
        RingSpec::new(nodes, clock.bytes_per_cycle(8.49e9), Cycles::new(16))
    }

    /// Number of accelerator nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Peak link bandwidth in bytes per cycle.
    pub fn link_bytes_per_cycle(&self) -> f64 {
        self.link_bytes_per_cycle
    }

    /// Per-hop forwarding latency.
    pub fn hop_latency(&self) -> Cycles {
        self.hop_latency
    }

    /// Rounds of buffer writing in a full synchronization: one local round
    /// plus `nodes - 1` network rounds (the paper counts four rounds for
    /// four nodes).
    pub fn sync_rounds(&self) -> usize {
        self.nodes
    }

    /// Cycles for one node's shard of `shard_bytes` to travel one hop.
    pub fn hop_cycles(&self, shard_bytes: usize) -> Cycles {
        if shard_bytes == 0 {
            return Cycles::ZERO;
        }
        Cycles::from_f64_ceil(shard_bytes as f64 / self.link_bytes_per_cycle) + self.hop_latency
    }

    /// Cycles for the ring all-gather: every node ends up with every node's
    /// shard (`shard_bytes` each). All links operate concurrently, so the
    /// total is `nodes - 1` sequential hop times. A single-node ring costs
    /// nothing.
    pub fn all_gather_cycles(&self, shard_bytes: usize) -> Cycles {
        if self.nodes <= 1 {
            return Cycles::ZERO;
        }
        self.hop_cycles(shard_bytes) * (self.nodes as u64 - 1)
    }

    /// Total bytes crossing all links in one all-gather of `shard_bytes`
    /// per node — each of the `nodes` shards traverses `nodes - 1` links.
    pub fn all_gather_traffic(&self, shard_bytes: usize) -> usize {
        if self.nodes <= 1 {
            return 0;
        }
        shard_bytes * self.nodes * (self.nodes - 1)
    }
}

impl fmt::Display for RingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ring x{} @ {:.2} B/cyc/link (+{} per hop)",
            self.nodes, self.link_bytes_per_cycle, self.hop_latency
        )
    }
}

/// Message carried between simulated routers: a shard forwarded around the
/// ring. `origin` identifies the node that produced the shard, which
/// determines the buffer offset at every receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMsg {
    /// Node that produced the shard.
    pub origin: usize,
    /// Payload (one datapack-granular shard).
    pub data: Vec<u8>,
    /// Hops remaining before this shard stops being forwarded.
    pub hops_left: usize,
}

/// A simulated router node: writes received shards into its buffer at
/// `origin * shard_len` and forwards them to its successor until the shard
/// has visited every node.
#[derive(Debug)]
struct RouterNode {
    successor: ProcessId,
    shard_len: usize,
    hop_cycles: Cycles,
    buffer: Rc<RefCell<Vec<u8>>>,
    received: usize,
}

impl Process<ShardMsg> for RouterNode {
    fn on_message(&mut self, _now: Cycles, msg: ShardMsg, ctx: &mut Context<ShardMsg>) {
        assert_eq!(msg.data.len(), self.shard_len, "shard length mismatch");
        // Offset based on the *origin* node id — the paper's routing
        // mechanism: "each router maintains an offset based on the node ID".
        let off = msg.origin * self.shard_len;
        self.buffer.borrow_mut()[off..off + self.shard_len].copy_from_slice(&msg.data);
        self.received += 1;
        if msg.hops_left > 0 {
            ctx.send_after(
                self.hop_cycles,
                self.successor,
                ShardMsg {
                    origin: msg.origin,
                    data: msg.data,
                    hops_left: msg.hops_left - 1,
                },
            );
        }
    }
}

/// Result of a [`RingSim`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSimOutcome {
    /// Final simulation time.
    pub end_time: Cycles,
    /// Reassembled buffer of each node, in node order.
    pub buffers: Vec<Vec<u8>>,
}

impl RingSimOutcome {
    /// Whether all node buffers hold identical contents — the paper's
    /// consistency guarantee after `n` rounds.
    pub fn buffers_consistent(&self) -> bool {
        self.buffers.windows(2).all(|w| w[0] == w[1])
    }
}

/// Discrete-event simulation of the ring synchronization protocol.
#[derive(Debug, Clone)]
pub struct RingSim {
    spec: RingSpec,
}

impl RingSim {
    /// Creates a simulation for the given ring.
    pub fn new(spec: RingSpec) -> Self {
        RingSim { spec }
    }

    /// Runs a full all-gather where node `i` contributes `shards[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != spec.nodes()` or shard lengths differ.
    pub fn all_gather(&self, shards: &[Vec<u8>]) -> RingSimOutcome {
        let n = self.spec.nodes();
        assert_eq!(shards.len(), n, "one shard per node required");
        let shard_len = shards.first().map_or(0, Vec::len);
        assert!(
            shards.iter().all(|s| s.len() == shard_len),
            "all shards must have equal length"
        );

        let mut engine: Engine<ShardMsg> = Engine::new();
        let hop = self.spec.hop_cycles(shard_len);
        let buffers: Vec<Rc<RefCell<Vec<u8>>>> = (0..n)
            .map(|_| Rc::new(RefCell::new(vec![0u8; shard_len * n])))
            .collect();
        for (id, buf) in buffers.iter().enumerate() {
            engine.add_process(RouterNode {
                successor: (id + 1) % n,
                shard_len,
                hop_cycles: hop,
                buffer: Rc::clone(buf),
                received: 0,
            });
        }
        // Round 1 (local): each node writes its own shard into its own
        // buffer and starts it around the ring with n-1 hops to go.
        for (id, shard) in shards.iter().enumerate() {
            engine.post(
                Cycles::ZERO,
                id,
                ShardMsg {
                    origin: id,
                    data: shard.clone(),
                    hops_left: n - 1,
                },
            );
        }
        let end_time = engine.run();
        drop(engine);
        let buffers = buffers
            .into_iter()
            .map(|b| Rc::try_unwrap(b).expect("engine dropped").into_inner())
            .collect();
        RingSimOutcome { end_time, buffers }
    }
}

/// Pure-functional ring all-gather: node `i`'s buffer receives every shard
/// at offset `origin * shard_len`, mirroring the router's offset rule.
pub fn functional_all_gather(shards: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let n = shards.len();
    let shard_len = shards.first().map_or(0, Vec::len);
    let mut buffers = vec![vec![0u8; shard_len * n]; n];
    for (node, buf) in buffers.iter_mut().enumerate() {
        // Simulate the per-round arrivals: in round r the node receives the
        // shard originated by (node - r) mod n from its predecessor.
        for r in 0..n {
            let origin = (node + n - r) % n;
            let off = origin * shard_len;
            buf[off..off + shard_len].copy_from_slice(&shards[origin]);
        }
    }
    buffers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> Frequency {
        Frequency::from_mhz(285.0)
    }

    #[test]
    fn single_node_costs_nothing() {
        let ring = RingSpec::paper_ring(1, clock());
        assert_eq!(ring.all_gather_cycles(1 << 20), Cycles::ZERO);
        assert_eq!(ring.all_gather_traffic(1 << 20), 0);
    }

    #[test]
    fn gather_time_grows_with_nodes() {
        let shard = 64 * 1024;
        let t2 = RingSpec::paper_ring(2, clock()).all_gather_cycles(shard);
        let t4 = RingSpec::paper_ring(4, clock()).all_gather_cycles(shard);
        let t8 = RingSpec::paper_ring(8, clock()).all_gather_cycles(shard);
        assert!(t2 < t4 && t4 < t8);
        // (n-1) proportionality
        assert_eq!(t4.as_u64(), t2.as_u64() * 3);
        assert_eq!(t8.as_u64(), t2.as_u64() * 7);
    }

    #[test]
    fn sync_rounds_match_paper() {
        // "with four nodes, the process involves four rounds"
        assert_eq!(RingSpec::paper_ring(4, clock()).sync_rounds(), 4);
    }

    #[test]
    fn des_matches_closed_form() {
        for nodes in [2usize, 3, 4, 8] {
            let spec = RingSpec::paper_ring(nodes, clock());
            let shard_len = 4096usize;
            let shards: Vec<Vec<u8>> = (0..nodes).map(|i| vec![i as u8 + 1; shard_len]).collect();
            let outcome = RingSim::new(spec.clone()).all_gather(&shards);
            assert_eq!(
                outcome.end_time,
                spec.all_gather_cycles(shard_len),
                "nodes={nodes}"
            );
        }
    }

    #[test]
    fn all_buffers_consistent_after_gather() {
        let nodes = 4;
        let spec = RingSpec::paper_ring(nodes, clock());
        let shards: Vec<Vec<u8>> = (0..nodes).map(|i| vec![i as u8 * 10; 128]).collect();
        let outcome = RingSim::new(spec).all_gather(&shards);
        assert!(outcome.buffers_consistent());
        // And the consistent buffer is the in-order concatenation.
        let expected: Vec<u8> = shards.concat();
        assert_eq!(outcome.buffers[0], expected);
    }

    #[test]
    fn functional_gather_orders_by_origin() {
        let shards = vec![vec![1u8, 1], vec![2, 2], vec![3, 3]];
        let bufs = functional_all_gather(&shards);
        for buf in &bufs {
            assert_eq!(buf, &[1, 1, 2, 2, 3, 3]);
        }
    }

    #[test]
    fn traffic_accounting() {
        let ring = RingSpec::paper_ring(4, clock());
        // each of 4 shards crosses 3 links
        assert_eq!(ring.all_gather_traffic(100), 100 * 12);
    }

    #[test]
    fn hop_cycles_includes_latency() {
        let ring = RingSpec::new(2, 32.0, Cycles::new(10));
        assert_eq!(ring.hop_cycles(320).as_u64(), 10 + 10);
        assert_eq!(ring.hop_cycles(0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = RingSpec::new(0, 1.0, Cycles::ZERO);
    }

    #[test]
    fn display_mentions_nodes() {
        let ring = RingSpec::paper_ring(4, clock());
        assert!(ring.to_string().contains("x4"));
    }
}
