//! Bit-exactness grid for batch-row sharding: prefill and batched decode
//! must produce byte-identical logits at every combination of node
//! count × row-shard count × threading, in both ring modes — sharding
//! partitions GEMM output rows and attention batch rows, never a dot
//! product, so any divergence is a stitching or synchronization bug.
//! The fused attention kernel gets the same grid: not bit-identical to
//! the materialized default, but bitwise *invariant* across the grid.

use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::attention::AttnMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;

const PROMPT: [u32; 5] = [3u32, 14, 15, 9, 2];
const BATCH: usize = 4;

/// Prefills `BATCH` slots and runs a few batched decode steps, returning
/// every logit row produced along the way.
fn run_batched(engine: &mut DistributedGpt2) -> Vec<Vec<f32>> {
    let mut outputs = Vec::new();
    let entries: Vec<(usize, u32)> = (0..BATCH)
        .map(|i| {
            let slot = engine.acquire_slot().expect("slot available");
            outputs.push(engine.prefill_slot(slot, &PROMPT));
            (slot, (i as u32) % 7)
        })
        .collect();
    for step in 0..3 {
        let step_entries: Vec<(usize, u32)> =
            entries.iter().map(|&(slot, t)| (slot, t + step)).collect();
        outputs.extend(engine.decode_step_batch(&step_entries));
    }
    outputs
}

fn engine(
    model: &Gpt2Model,
    nodes: usize,
    mode: RingMode,
    row_shards: usize,
    threaded: bool,
    attn: AttnMode,
) -> DistributedGpt2 {
    let mut e = DistributedGpt2::with_slots(model, nodes, mode, BATCH, 32).expect("divides");
    e.set_row_shards(row_shards);
    e.set_threaded(threaded);
    e.set_attn_mode(attn);
    e
}

fn assert_grid_identical(mode: RingMode, attn: AttnMode, seed: u64) {
    let model = Gpt2Model::synthetic(&ModelConfig::tiny(), seed);
    let mut reference = engine(&model, 1, mode, 1, false, attn);
    let single_node = run_batched(&mut reference);

    for nodes in [1usize, 2, 4] {
        // Per-node-count baseline: in Quantized ring mode the shard
        // gathers requantize, so logits legitimately differ *across*
        // node counts; sharding and threading must still never move a
        // bit *within* one.
        let mut base = engine(&model, nodes, mode, 1, false, attn);
        let expect = run_batched(&mut base);
        if mode == RingMode::Exact {
            assert_eq!(
                single_node, expect,
                "exact ring mode must be node-count invariant at nodes={nodes}"
            );
        }
        for row_shards in [1usize, 2, 4] {
            for threaded in [false, true] {
                let mut e = engine(&model, nodes, mode, row_shards, threaded, attn);
                assert_eq!(e.row_shards(), row_shards);
                let got = run_batched(&mut e);
                assert_eq!(
                    expect, got,
                    "logits diverged at nodes={nodes} shards={row_shards} \
                     threaded={threaded} mode={mode:?} attn={attn:?}"
                );
            }
        }
    }
}

#[test]
fn row_shard_grid_is_bit_exact_in_exact_ring_mode() {
    assert_grid_identical(RingMode::Exact, AttnMode::Materialized, 21);
}

#[test]
fn row_shard_grid_is_bit_exact_in_quantized_ring_mode() {
    assert_grid_identical(RingMode::Quantized, AttnMode::Materialized, 33);
}

#[test]
fn fused_attention_is_bitwise_invariant_across_the_grid() {
    // Fused ≠ materialized bit-for-bit, but fused must equal fused across
    // every node/shard/thread combination (tiles are cut by token index).
    assert_grid_identical(RingMode::Exact, AttnMode::Fused, 45);
}

#[test]
fn fused_engine_tracks_fused_reference_model() {
    // Engine-level fused decode must match the single-model fused
    // forward bitwise at one node (same kernel, same walk order).
    let cfg = ModelConfig::tiny();
    let model = Gpt2Model::synthetic(&cfg, 99);
    let mut single = model.clone();
    single.set_attn_mode(AttnMode::Fused);

    let mut e = engine(&model, 1, RingMode::Exact, 1, false, AttnMode::Fused);
    let slot = e.acquire_slot().expect("slot");
    let got_prefill = e.prefill_slot(slot, &PROMPT);

    let want_prefill = single.prefill(&PROMPT);
    assert_eq!(want_prefill, got_prefill, "fused prefill logits diverged");

    let got = e.decode_step_batch(&[(slot, 5)]).remove(0);
    let want = single.decode_step(5);
    assert_eq!(want, got, "fused decode logits diverged");
}

#[test]
fn set_row_shards_is_stateless_across_toggles() {
    let model = Gpt2Model::synthetic(&ModelConfig::tiny(), 50);
    let mut e = engine(&model, 2, RingMode::Exact, 1, false, AttnMode::Materialized);
    let a = run_batched(&mut e);

    let mut e = engine(&model, 2, RingMode::Exact, 1, false, AttnMode::Materialized);
    e.set_row_shards(4);
    e.set_threaded(true);
    e.set_row_shards(2); // shrink again mid-flight
    let b = run_batched(&mut e);
    assert_eq!(a, b, "re-sharding changed results");
}
