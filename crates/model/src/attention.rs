//! Causal multi-head attention over the quantized KV cache.
//!
//! Mirrors the fused MHA kernel's structure (paper Fig. 6(b)): a first MAC
//! array computes integer attention scores per head from the key cache, a
//! mask unit keeps only forward attention, the two-phase softmax produces
//! weighted scores, and a second MAC array mixes the cached values. Scores
//! and token mixing run on the int8 path with i32 accumulation; softmax
//! runs in f32.
//!
//! `head_range` selects which *global* heads to compute while
//! `cache_head_offset` maps them onto the (possibly head-sliced) cache —
//! a node that owns heads 8‥16 passes the same query slice it produced and
//! offset 0 into its local cache, and obtains bit-identical results to the
//! corresponding slice of a full-width computation (per-head quantization
//! makes the partition boundary exact).
//!
//! The hot loop works directly on the cache's contiguous head-major arena
//! strips ([`LayerKvCache::key_strip`]) and reuses one [`AttnScratch`]
//! across heads instead of allocating scores/weights/accumulator vectors
//! and a quantized query per head per token. The arithmetic — operations
//! and their order — is unchanged, so results stay bit-identical to the
//! original per-head implementation.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use looplynx_tensor::activation::{causal_mask, softmax_into};
use looplynx_tensor::quant::quantize_into;
use looplynx_tensor::simd::{accumulate_scaled_i8, dot_i8_i32 as dot_i8};

use crate::kv_cache::LayerKvCache;

/// Which attention kernel the functional paths evaluate.
///
/// [`AttnMode::Materialized`] is the default and the bit-exact oracle
/// every equivalence test pins against. [`AttnMode::Fused`] is the
/// flash-style tiled online-softmax path
/// ([`attend_heads_fused_segments_to`]): O([`FUSED_TILE`]) working
/// memory, deterministic and bitwise-invariant across page geometry /
/// node counts / row shards / threading, but *close to* rather than
/// bit-identical with the materialized kernel (its mixing weights stay
/// in f32 and its normalizer accumulates online), so it is strictly
/// opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AttnMode {
    /// Two-phase softmax over a materialized score row, int8 mixing
    /// weights — the paper's kernel and the repo-wide exactness oracle.
    #[default]
    Materialized,
    /// Tiled online-softmax with f32 mixing weights and a rescaled
    /// accumulator; never materializes the score row.
    Fused,
}

/// Reusable attention working memory: quantized query head, score /
/// weight vectors, quantized weights. One instance serves any number of
/// [`attend_heads_into`] calls; buffers grow to the high-water mark and
/// stay there.
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    q8: Vec<i8>,
    scores: Vec<f32>,
    weights: Vec<f32>,
    w8: Vec<i8>,
}

impl AttnScratch {
    /// Creates empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One contiguous run of cached tokens for a single head: int8 key/value
/// strips (`tokens × d_head` each) plus one scale per token. A contiguous
/// [`LayerKvCache`] is a single segment; a paged arena contributes one
/// segment per page, in token order. Attention iterates segments with the
/// exact same per-token operations either way, so the storage layout never
/// changes the arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct KvSegment<'a> {
    /// Int8 keys, token-major within the segment.
    pub keys: &'a [i8],
    /// Int8 values, token-major within the segment.
    pub values: &'a [i8],
    /// Per-token key scales.
    pub key_scales: &'a [f32],
    /// Per-token value scales.
    pub value_scales: &'a [f32],
}

/// Computes attention for `head_range` of the query `q`.
///
/// * `q` — the query slice held by the caller (`q.len()` must equal
///   `head_range.len() × d_head`; a full-width caller passes the full
///   query and `0..heads`).
/// * `cache` — KV cache whose local head 0 corresponds to global head
///   `cache_head_offset`.
/// * `valid_len` — cache positions attended (own position + predecessors).
///
/// Returns the concatenated per-head outputs.
///
/// # Panics
///
/// Panics if geometry is inconsistent or `valid_len` exceeds the cache.
pub fn attend_heads(
    q: &[f32],
    cache: &LayerKvCache,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
) -> Vec<f32> {
    // Scratch persists per thread across calls, so steady-state decode
    // loops (one attend per node per layer per token) stop allocating
    // working memory entirely; only the returned vector is fresh.
    thread_local! {
        static SCRATCH: std::cell::RefCell<AttnScratch> =
            std::cell::RefCell::new(AttnScratch::new());
    }
    let mut out = Vec::new();
    SCRATCH.with(|scratch| {
        attend_heads_into(
            q,
            cache,
            head_range,
            cache_head_offset,
            d_head,
            valid_len,
            &mut scratch.borrow_mut(),
            &mut out,
        );
    });
    out
}

/// [`attend_heads`] writing into a caller-provided output buffer (cleared
/// and resized) with caller-provided scratch — the fully allocation-free
/// decode path.
///
/// # Panics
///
/// Panics if geometry is inconsistent or `valid_len` exceeds the cache.
#[allow(clippy::too_many_arguments)]
pub fn attend_heads_into(
    q: &[f32],
    cache: &LayerKvCache,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
    scratch: &mut AttnScratch,
    out: &mut Vec<f32>,
) {
    assert!(valid_len <= cache.len(), "valid_len beyond cache");
    assert!(
        head_range.start >= cache_head_offset
            && head_range.end - cache_head_offset <= cache.heads(),
        "head range outside cache slice"
    );

    attend_heads_segments_into(
        q,
        |cache_h| {
            std::iter::once(KvSegment {
                keys: cache.key_strip(cache_h),
                values: cache.value_strip(cache_h),
                key_scales: cache.key_scales(cache_h),
                value_scales: cache.value_scales(cache_h),
            })
        },
        head_range,
        cache_head_offset,
        d_head,
        valid_len,
        scratch,
        out,
    );
}

/// The segment-generic attention core: `segments_of(local_head)` yields
/// that head's cached tokens as contiguous [`KvSegment`]s in token order.
/// The per-token operations and their order are identical regardless of
/// how tokens are split into segments, so a paged cache (one segment per
/// page) is **bit-identical** to a contiguous one (a single segment).
///
/// # Panics
///
/// Panics if the query length disagrees with the head range, `valid_len`
/// is zero, or the segments of some head cover fewer than `valid_len`
/// tokens.
#[allow(clippy::too_many_arguments)]
pub fn attend_heads_segments_into<'a, I, F>(
    q: &[f32],
    segments_of: F,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
    scratch: &mut AttnScratch,
    out: &mut Vec<f32>,
) where
    I: Iterator<Item = KvSegment<'a>>,
    F: Fn(usize) -> I,
{
    out.clear();
    out.resize(head_range.len() * d_head, 0.0);
    attend_heads_segments_to(
        q,
        segments_of,
        head_range,
        cache_head_offset,
        d_head,
        valid_len,
        scratch,
        out,
    );
}

/// [`attend_heads_segments_into`] writing into a caller-provided slice of
/// exactly `head_range.len() × d_head` elements (overwritten) — the
/// batched engine points this at each row's strip of one flat per-node
/// output buffer, so a whole batch's attention produces zero allocations
/// and no per-row `Vec`s to gather.
///
/// # Panics
///
/// Panics if the query or output length disagrees with the head range,
/// `valid_len` is zero, or the segments of some head cover fewer than
/// `valid_len` tokens.
#[allow(clippy::too_many_arguments)]
pub fn attend_heads_segments_to<'a, I, F>(
    q: &[f32],
    segments_of: F,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
    scratch: &mut AttnScratch,
    out: &mut [f32],
) where
    I: Iterator<Item = KvSegment<'a>>,
    F: Fn(usize) -> I,
{
    assert_eq!(
        q.len(),
        head_range.len() * d_head,
        "query length mismatch for head range"
    );
    assert_eq!(
        out.len(),
        head_range.len() * d_head,
        "output length mismatch for head range"
    );
    assert!(valid_len > 0, "attention needs at least one cached token");

    let inv_sqrt = 1.0 / (d_head as f32).sqrt();
    let AttnScratch {
        q8,
        scores,
        weights,
        w8: w8_buf,
    } = scratch;

    for (local_idx, h) in head_range.clone().enumerate() {
        let cache_h = h - cache_head_offset;
        // --- first MAC array: integer attention scores from the key
        // cache, the query head requantized once into scratch.
        let q_scale = quantize_into(&q[local_idx * d_head..(local_idx + 1) * d_head], q8);
        scores.clear();
        let mut remaining = valid_len;
        for seg in segments_of(cache_h) {
            if remaining == 0 {
                break;
            }
            scores.extend(
                seg.keys
                    .chunks_exact(d_head)
                    .zip(seg.key_scales)
                    .take(remaining)
                    .map(|(k, &k_scale)| {
                        let acc = dot_i8(q8, k);
                        acc as f32 * q_scale * k_scale * inv_sqrt
                    }),
            );
            remaining = valid_len - scores.len();
        }
        // Stays a release-build assert: it runs once per head (not per
        // token), and a short segment walk would otherwise feed the
        // softmax a truncated score row — silently wrong tokens.
        assert!(remaining == 0, "valid_len beyond cache");
        // --- mask unit: only forward attention survives
        causal_mask(scores, valid_len);
        // --- softmax unit (two phases internally)
        softmax_into(scores, weights);
        // --- second MAC array: token mixing over the value cache.
        // Attention weights are requantized to int8 so the mixing MACs stay
        // on the integer path; each cached head has its own value scale.
        let w_scale = quantize_into(weights, w8_buf);
        let acc = &mut out[local_idx * d_head..(local_idx + 1) * d_head];
        acc.fill(0.0);
        let mut t = 0usize;
        'mix: for seg in segments_of(cache_h) {
            for (local, v) in seg.values.chunks_exact(d_head).enumerate() {
                if t == valid_len {
                    break 'mix;
                }
                let w8 = w8_buf[t];
                t += 1;
                if w8 == 0 {
                    continue;
                }
                let vs = seg.value_scales[local] * w_scale * w8 as f32;
                accumulate_scaled_i8(acc, v, vs);
            }
        }
    }
}

/// Full-width attention over all heads of a full cache.
pub fn attend_all(
    q: &[f32],
    cache: &LayerKvCache,
    heads: usize,
    d_head: usize,
    valid_len: usize,
) -> Vec<f32> {
    attend_heads(q, cache, 0..heads, 0, d_head, valid_len)
}

/// Logical tile width (in tokens) of the fused online-softmax path. Tiles
/// are cut by **token index**, never by storage segment, so the fused
/// recurrence — and therefore its output, bit for bit — is independent of
/// KV page geometry.
pub const FUSED_TILE: usize = 64;

/// Fused (flash-style) tiled online-softmax attention over KV segments.
///
/// Where the materialized path buffers one score per cached token, runs a
/// two-phase softmax over the full row and requantizes the weights to
/// int8 before value mixing, this path streams the cache once in logical
/// tiles of [`FUSED_TILE`] tokens keeping only a running maximum `m`, a
/// running normalizer `σ` and a `d_head`-wide accumulator that is
/// rescaled by `exp(m_old − m_new)` whenever a tile raises the maximum;
/// the weights stay in f32 and the score row is never materialized
/// (working memory is O(`FUSED_TILE`), not O(tokens)).
///
/// Numerics: the integer score dots are identical to the materialized
/// path, but the online rescaling and the f32 (unquantized) mixing
/// weights make the result *close to*, not bit-identical with,
/// [`attend_heads_segments_to`] — the materialized path remains the
/// oracle the property tests compare against. The fused result itself is
/// fully deterministic and bitwise-invariant across page geometry, node
/// counts, row shards and threading: tiles follow token indices, so the
/// segment layout never changes the arithmetic.
///
/// # Panics
///
/// Panics if the query or output length disagrees with the head range,
/// `valid_len` is zero, or the segments of some head cover fewer than
/// `valid_len` tokens.
#[allow(clippy::too_many_arguments)]
pub fn attend_heads_fused_segments_to<'a, I, F>(
    q: &[f32],
    segments_of: F,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
    scratch: &mut AttnScratch,
    out: &mut [f32],
) where
    I: Iterator<Item = KvSegment<'a>>,
    F: Fn(usize) -> I,
{
    assert_eq!(
        q.len(),
        head_range.len() * d_head,
        "query length mismatch for head range"
    );
    assert_eq!(
        out.len(),
        head_range.len() * d_head,
        "output length mismatch for head range"
    );
    assert!(valid_len > 0, "attention needs at least one cached token");

    let inv_sqrt = 1.0 / (d_head as f32).sqrt();
    let q8 = &mut scratch.q8;
    const EMPTY: &[i8] = &[];

    for (local_idx, h) in head_range.clone().enumerate() {
        let cache_h = h - cache_head_offset;
        let q_scale = quantize_into(&q[local_idx * d_head..(local_idx + 1) * d_head], q8);
        let acc = &mut out[local_idx * d_head..(local_idx + 1) * d_head];
        acc.fill(0.0);

        // Online-softmax state: running max, running normalizer, and the
        // value accumulator in `acc` (rescaled on max updates).
        let mut m = f32::NEG_INFINITY;
        let mut sigma = 0.0f32;

        // One logical tile: scores plus borrowed value rows, filled in
        // token order across segment boundaries.
        let mut tile_scores = [0.0f32; FUSED_TILE];
        let mut tile_vals: [(&[i8], f32); FUSED_TILE] = [(EMPTY, 0.0); FUSED_TILE];
        let mut fill = 0usize;
        let mut seen = 0usize;

        let mut flush = |tile_scores: &[f32], tile_vals: &[(&[i8], f32)], acc: &mut [f32]| {
            let m_tile = tile_scores.iter().fold(f32::NEG_INFINITY, |a, &s| a.max(s));
            let m_new = m.max(m_tile);
            if m_new > m && sigma > 0.0 {
                let rescale = (m - m_new).exp();
                sigma *= rescale;
                for a in acc.iter_mut() {
                    *a *= rescale;
                }
            }
            for (&s, &(v, vscale)) in tile_scores.iter().zip(tile_vals) {
                let e = (s - m_new).exp();
                sigma += e;
                if e != 0.0 {
                    accumulate_scaled_i8(acc, v, e * vscale);
                }
            }
            m = m_new;
        };

        'walk: for seg in segments_of(cache_h) {
            for ((k, v), (&k_scale, &v_scale)) in seg
                .keys
                .chunks_exact(d_head)
                .zip(seg.values.chunks_exact(d_head))
                .zip(seg.key_scales.iter().zip(seg.value_scales))
            {
                if seen == valid_len {
                    break 'walk;
                }
                let s = dot_i8(q8, k) as f32 * q_scale * k_scale * inv_sqrt;
                tile_scores[fill] = s;
                tile_vals[fill] = (v, v_scale);
                fill += 1;
                seen += 1;
                if fill == FUSED_TILE {
                    flush(&tile_scores[..fill], &tile_vals[..fill], acc);
                    fill = 0;
                }
            }
        }
        assert!(seen == valid_len, "valid_len beyond cache");
        if fill > 0 {
            flush(&tile_scores[..fill], &tile_vals[..fill], acc);
        }
        let inv_sigma = 1.0 / sigma;
        for a in acc.iter_mut() {
            *a *= inv_sigma;
        }
    }
}

/// [`attend_heads_fused_segments_to`] writing into a cleared/resized
/// `Vec` — convenience for tests and single-token callers.
#[allow(clippy::too_many_arguments)]
pub fn attend_heads_fused_segments_into<'a, I, F>(
    q: &[f32],
    segments_of: F,
    head_range: Range<usize>,
    cache_head_offset: usize,
    d_head: usize,
    valid_len: usize,
    scratch: &mut AttnScratch,
    out: &mut Vec<f32>,
) where
    I: Iterator<Item = KvSegment<'a>>,
    F: Fn(usize) -> I,
{
    out.clear();
    out.resize(head_range.len() * d_head, 0.0);
    attend_heads_fused_segments_to(
        q,
        segments_of,
        head_range,
        cache_head_offset,
        d_head,
        valid_len,
        scratch,
        out,
    );
}

/// Full-width fused attention over all heads of a contiguous cache — the
/// single-node reference counterpart of [`attend_all`].
pub fn attend_all_fused(
    q: &[f32],
    cache: &LayerKvCache,
    heads: usize,
    d_head: usize,
    valid_len: usize,
) -> Vec<f32> {
    assert!(valid_len <= cache.len(), "valid_len beyond cache");
    thread_local! {
        static SCRATCH: std::cell::RefCell<AttnScratch> =
            std::cell::RefCell::new(AttnScratch::new());
    }
    let mut out = Vec::new();
    SCRATCH.with(|scratch| {
        attend_heads_fused_segments_into(
            q,
            |cache_h| {
                std::iter::once(KvSegment {
                    keys: cache.key_strip(cache_h),
                    values: cache.value_strip(cache_h),
                    key_scales: cache.key_scales(cache_h),
                    value_scales: cache.value_scales(cache_h),
                })
            },
            0..heads,
            0,
            d_head,
            valid_len,
            &mut scratch.borrow_mut(),
            &mut out,
        );
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(d_head: usize, tokens: &[(&[f32], &[f32])]) -> LayerKvCache {
        let mut c = LayerKvCache::new(d_head);
        for (k, v) in tokens {
            c.append(k, v);
        }
        c
    }

    #[test]
    fn single_token_attends_to_itself() {
        let v = [0.5f32, -0.5, 0.25, 1.0];
        let cache = cache_with(4, &[(&[1.0, 0.0, 0.0, 0.0], &v)]);
        let out = attend_all(&[1.0, 0.0, 0.0, 0.0], &cache, 1, 4, 1);
        // with one token, softmax weight is 1.0: output ≈ value vector
        for (o, expect) in out.iter().zip(&v) {
            assert!((o - expect).abs() < 0.05, "{o} vs {expect}");
        }
    }

    #[test]
    fn attention_prefers_matching_key() {
        let cache = cache_with(2, &[(&[4.0, 0.0], &[1.0, 0.0]), (&[0.0, 4.0], &[0.0, 1.0])]);
        let out = attend_all(&[4.0, 0.0], &cache, 1, 2, 2);
        assert!(
            out[0] > 0.8,
            "weight should concentrate on token 0: {out:?}"
        );
        assert!(out[1] < 0.2);
    }

    #[test]
    fn causal_masking_ignores_future_tokens() {
        let cache = cache_with(
            2,
            &[(&[1.0, 0.0], &[1.0, 1.0]), (&[1.0, 0.0], &[-9.0, -9.0])],
        );
        // valid_len = 1: the second (future) token must not contribute
        let out = attend_all(&[1.0, 0.0], &cache, 1, 2, 1);
        assert!(out[0] > 0.8 && out[1] > 0.8, "future token leaked: {out:?}");
    }

    #[test]
    fn head_partition_is_bit_identical_to_full() {
        let heads = 4;
        let d_head = 4;
        let d = heads * d_head;
        let mk = |t: usize| -> (Vec<f32>, Vec<f32>) {
            (
                (0..d).map(|i| ((i + t) as f32 * 0.37).sin()).collect(),
                (0..d)
                    .map(|i| ((i * (t + 1)) as f32 * 0.21).cos())
                    .collect(),
            )
        };
        let mut full = LayerKvCache::new(d_head);
        let mut lo_cache = LayerKvCache::new(d_head);
        let mut hi_cache = LayerKvCache::new(d_head);
        for t in 0..3 {
            let (k, v) = mk(t);
            full.append(&k, &v);
            lo_cache.append(&k[..d / 2], &v[..d / 2]);
            hi_cache.append(&k[d / 2..], &v[d / 2..]);
        }
        let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.11).sin()).collect();
        let reference = attend_all(&q, &full, heads, d_head, 3);
        // node 0 owns heads 0..2 with a local cache; node 1 owns heads 2..4
        let lo = attend_heads(&q[..d / 2], &lo_cache, 0..2, 0, d_head, 3);
        let hi = attend_heads(&q[d / 2..], &hi_cache, 2..4, 2, d_head, 3);
        let stitched: Vec<f32> = lo.into_iter().chain(hi).collect();
        assert_eq!(reference, stitched, "partitioned attention must be exact");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_calls() {
        // One scratch serving many shapes must never leak state between
        // calls: results match fresh-scratch calls exactly.
        let d_head = 4;
        let cache = cache_with(
            d_head,
            &[
                (&[0.3, -0.1, 0.8, 0.5, 1.0, -0.7, 0.2, 0.9], &[0.4; 8]),
                (&[0.1, 0.6, -0.3, 0.2, -0.5, 0.8, 0.1, -0.2], &[-0.6; 8]),
                (&[0.9, 0.2, 0.1, -0.8, 0.3, 0.3, -0.4, 0.7], &[0.2; 8]),
            ],
        );
        let q: Vec<f32> = (0..8).map(|i| (i as f32 * 0.41).cos()).collect();
        let mut scratch = AttnScratch::new();
        let mut out = Vec::new();
        for valid in [3usize, 1, 2, 3] {
            attend_heads_into(&q, &cache, 0..2, 0, d_head, valid, &mut scratch, &mut out);
            let fresh = attend_heads(&q, &cache, 0..2, 0, d_head, valid);
            assert_eq!(out, fresh, "valid_len {valid}");
        }
    }

    #[test]
    #[should_panic(expected = "beyond cache")]
    fn valid_len_checked() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        let _ = attend_all(&[1.0, 0.0], &cache, 1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn geometry_checked() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        let _ = attend_all(&[1.0, 0.0, 3.0], &cache, 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "outside cache slice")]
    fn head_range_checked_against_cache() {
        let cache = cache_with(2, &[(&[1.0, 0.0], &[1.0, 0.0])]);
        // cache has 1 head but we ask for heads 0..2
        let _ = attend_heads(&[1.0, 0.0, 0.5, 0.5], &cache, 0..2, 0, 2, 1);
    }
}
