//! Functional continuous-batching serving benchmark.
//!
//! Measures what the backend refactor bought: sustained output tokens/s
//! of the *functional* W8A8 engine serving a saturating request workload,
//! continuous batching at decode-batch ceilings of 1/4/8/16 against the
//! one-request-at-a-time sequential baseline. Unlike `serve_sweep`
//! (simulated accelerator time) this is measured host wall-clock — the
//! same clock domain as the `hotpath` benchmark.
//!
//! Decode is memory-bound: one token streams every weight byte once. The
//! sequential baseline pays that stream per request per token; batched
//! decode tiles each 32-row weight block across all resident sequences,
//! so one stream serves the whole batch — throughput should approach
//! `batch ×` until per-sequence attention work dominates.
//!
//! The `serve_functional` binary renders `BENCH_serve_functional.json`,
//! embedding the pinned pre-change baseline ([`BASELINE`]) so every run
//! reports its speedup against the single-sequence engine the repo had
//! before batched decode existed.

use std::time::Instant;

use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_serve::{serve_continuous_on, serve_sequential_on, ArrivalProcess, ServeConfig};

use crate::hotpath::medium_shaped;

/// Decode-batch ceilings swept.
pub const BATCH_SWEEP: [usize; 4] = [1, 4, 8, 16];

/// Timed repetitions per cell; the best (highest-throughput) repetition
/// is reported, matching the `hotpath` methodology.
pub const MEASURE_REPS: usize = 5;

/// Single-sequence functional decode throughput of the **pre-change**
/// tree (PR 4 state: no batched decode, no slot arena), measured on this
/// repo by `hotpath` immediately before the backend refactor landed.
/// Sequential serving cannot beat single-sequence decode throughput, so
/// this is the bar batched decode is judged against.
pub const BASELINE: Baseline = Baseline {
    captured_at: "pre-batched-decode (PR 4 tree, hotpath best-of-5 before this refactor)",
    medium_decode_tok_s_1node: 251.4,
    tiny_decode_tok_s_1node: 48_088.0,
};

/// Pre-change reference numbers baked into the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Where the numbers come from.
    pub captured_at: &'static str,
    /// Decode tokens/s, [`medium_shaped`], 1 node, single sequence.
    pub medium_decode_tok_s_1node: f64,
    /// Decode tokens/s, `ModelConfig::tiny()`, 1 node, single sequence.
    pub tiny_decode_tok_s_1node: f64,
}

/// Page-pressure cell: fixed-stride vs paged KV at **equal arena
/// bytes**. The fixed-stride engine reserves `capacity` tokens per slot
/// up front, so its resident concurrency is hard-capped at
/// `arena_tokens / capacity` no matter how short the requests are. The
/// paged engine spends the same token pool page-by-page, so short
/// requests only hold what they touch and many more fit at once. The
/// acceptance bar for the paged-KV work is `concurrency_ratio >= 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagePressure {
    /// Per-slot KV capacity (tokens) on both sides.
    pub capacity: usize,
    /// Total KV token pool — identical on both sides (equal arena bytes).
    pub arena_tokens: usize,
    /// Fixed-stride slots (= `arena_tokens / capacity`).
    pub fixed_slots: usize,
    /// Paged slots offered (oversubscribed against the pool).
    pub paged_slots: usize,
    /// Tokens per page on the paged side.
    pub page_tokens: usize,
    /// Pages in the paged pool (= `arena_tokens / page_tokens`).
    pub pool_pages: usize,
    /// Requests served (all arriving at t = 0).
    pub requests: usize,
    /// Prompt tokens per request.
    pub prefill_tokens: usize,
    /// Output tokens per request.
    pub decode_tokens: usize,
    /// Peak resident requests, fixed-stride arena (best repetition).
    pub fixed_peak_resident: f64,
    /// Peak resident requests, paged arena (best repetition).
    pub paged_peak_resident: f64,
    /// `paged_peak_resident / fixed_peak_resident` — must be ≥ 2.
    pub concurrency_ratio: f64,
    /// Sustained tokens/s over the makespan, fixed-stride arena.
    pub fixed_tok_s: f64,
    /// Sustained tokens/s over the makespan, paged arena.
    pub paged_tok_s: f64,
}

/// One row of the `batch_scaling` report section: how steady-state
/// decode throughput scales with the batch ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchScalingRow {
    /// Decode-batch ceiling.
    pub max_batch: usize,
    /// Steady-state decode tokens/s at this ceiling (best repetition).
    pub decode_tok_s: f64,
    /// Scaling over the batch-1 decode cell — the batching win isolated
    /// from everything else (same engine, same kernel, same slots).
    pub speedup_vs_batch1: f64,
    /// Speedup over the sequential decode phase (single-slot engine).
    pub speedup_vs_sequential_decode: f64,
}

/// One measured serving cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Decode-batch ceiling (= resident slots).
    pub max_batch: usize,
    /// Sustained output tokens/s over the full serving makespan —
    /// prefills included (best repetition).
    pub tok_s: f64,
    /// Steady-state decode throughput: tokens per second over decode
    /// iterations only, all slots resident — the Table III convention
    /// ([`looplynx_core::engine::GenerationReport::tokens_per_second`]
    /// is likewise decode-only). Best repetition.
    pub decode_tok_s: f64,
}

/// The full functional-serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFunctionalReport {
    /// Model configuration name.
    pub model: String,
    /// Ring size.
    pub nodes: usize,
    /// Requests served per cell (all arriving at t = 0).
    pub requests: usize,
    /// Prompt tokens per request.
    pub prefill_tokens: usize,
    /// Output tokens per request.
    pub decode_tokens: usize,
    /// Sequential (one-request-at-a-time) serving tokens/s over the full
    /// makespan — **the sequential-serving baseline**.
    pub sequential_tok_s: f64,
    /// Sequential steady-state decode throughput (single resident
    /// sequence, decode iterations only).
    pub sequential_decode_tok_s: f64,
    /// Continuous batching at each ceiling of [`BATCH_SWEEP`].
    pub batched: Vec<BatchPoint>,
    /// Paged-vs-fixed resident-concurrency cell at equal arena bytes.
    pub page_pressure: PagePressure,
    /// Host wall-clock of the whole measurement.
    pub wall_s: f64,
    /// Whether the run used the reduced `--quick` workload.
    pub quick: bool,
}

impl ServeFunctionalReport {
    /// Batched tokens/s at the given ceiling (0.0 if not measured).
    pub fn batched_tok_s(&self, max_batch: usize) -> f64 {
        self.batched
            .iter()
            .find(|p| p.max_batch == max_batch)
            .map_or(0.0, |p| p.tok_s)
    }

    /// Batched decode tokens/s at the given ceiling (0.0 if not measured).
    pub fn batched_decode_tok_s(&self, max_batch: usize) -> f64 {
        self.batched
            .iter()
            .find(|p| p.max_batch == max_batch)
            .map_or(0.0, |p| p.decode_tok_s)
    }

    /// Batch-16 steady-state batched-decode throughput over the
    /// sequential-serving baseline — the acceptance metric of the
    /// batched-decode work (target ≥ 4×). Both sides are this report's
    /// own measurements: decode-phase tokens/s at batch 16 (the Table
    /// III decode-only convention) against the sequential serving run.
    pub fn batch16_speedup_vs_sequential(&self) -> f64 {
        if self.sequential_tok_s <= 0.0 {
            return 0.0;
        }
        self.batched_decode_tok_s(16) / self.sequential_tok_s
    }

    /// Like-for-like steady-state ratio: batched decode tokens/s at
    /// batch 16 over *sequential decode* tokens/s (prefill excluded on
    /// both sides).
    pub fn batch16_decode_speedup_vs_sequential_decode(&self) -> f64 {
        if self.sequential_decode_tok_s <= 0.0 {
            return 0.0;
        }
        self.batched_decode_tok_s(16) / self.sequential_decode_tok_s
    }

    /// The `batch_scaling` section: one row per swept ceiling with the
    /// decode-phase throughput and its speedups over the batch-1 cell
    /// and the sequential decode baseline. This is what CI gates on
    /// (batch 16 must not lose to batch 4).
    pub fn batch_scaling(&self) -> Vec<BatchScalingRow> {
        let batch1 = self.batched_decode_tok_s(1);
        self.batched
            .iter()
            .map(|p| BatchScalingRow {
                max_batch: p.max_batch,
                decode_tok_s: p.decode_tok_s,
                speedup_vs_batch1: if batch1 > 0.0 {
                    p.decode_tok_s / batch1
                } else {
                    0.0
                },
                speedup_vs_sequential_decode: if self.sequential_decode_tok_s > 0.0 {
                    p.decode_tok_s / self.sequential_decode_tok_s
                } else {
                    0.0
                },
            })
            .collect()
    }
}

fn fresh_backend(
    model: &Gpt2Model,
    nodes: usize,
    slots: usize,
    capacity: usize,
) -> FunctionalBackend {
    let engine = DistributedGpt2::with_slots(model, nodes, RingMode::Exact, slots, capacity)
        .expect("benchmark model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

/// Measures the page-pressure cell on `cfg`: serves the same burst of
/// short requests through the continuous batcher twice, once on a
/// fixed-stride arena and once on a paged arena holding the **same
/// total KV tokens**, and compares peak resident concurrency. Requests
/// peak at one page of context, so the paged side can keep every slot
/// resident while the fixed side is capped by its stride.
pub fn measure_page_pressure(cfg: &ModelConfig) -> PagePressure {
    const CAPACITY: usize = 64;
    const FIXED_SLOTS: usize = 4;
    const PAGE_TOKENS: usize = 16;
    const PAGED_SLOTS: usize = 16;
    const ARENA_TOKENS: usize = FIXED_SLOTS * CAPACITY;
    const POOL_PAGES: usize = ARENA_TOKENS / PAGE_TOKENS;
    const REQUESTS: usize = 16;
    const PREFILL: usize = 8;
    const DECODE: usize = 8;

    let model = Gpt2Model::synthetic(cfg, 4207);
    let workload = ArrivalProcess::Trace(vec![0.0; REQUESTS]).workload_with_prompts(
        REQUESTS,
        &[(PREFILL, DECODE)],
        cfg.vocab,
        0x9A6E,
    );
    let serve_cfg = ServeConfig::new(PAGED_SLOTS);

    let mut fixed_peak = 0.0f64;
    let mut fixed_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let mut backend = fresh_backend(&model, 1, FIXED_SLOTS, CAPACITY);
        let report = serve_continuous_on(&mut backend, &workload, &serve_cfg);
        assert_eq!(
            report.completed(),
            REQUESTS,
            "fixed-stride cell dropped requests"
        );
        fixed_peak = fixed_peak.max(report.batch_occupancy.max().unwrap_or(0.0));
        fixed_tok_s = fixed_tok_s.max(report.tokens_per_second());
    }

    let mut paged_peak = 0.0f64;
    let mut paged_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let engine = DistributedGpt2::with_paged_slots(
            &model,
            1,
            RingMode::Exact,
            PAGED_SLOTS,
            CAPACITY,
            PAGE_TOKENS,
            POOL_PAGES,
        )
        .expect("benchmark model partitions");
        let mut backend = FunctionalBackend::new(engine, SamplerSpec::Greedy);
        let report = serve_continuous_on(&mut backend, &workload, &serve_cfg);
        assert_eq!(report.completed(), REQUESTS, "paged cell dropped requests");
        paged_peak = paged_peak.max(report.batch_occupancy.max().unwrap_or(0.0));
        paged_tok_s = paged_tok_s.max(report.tokens_per_second());
    }

    PagePressure {
        capacity: CAPACITY,
        arena_tokens: ARENA_TOKENS,
        fixed_slots: FIXED_SLOTS,
        paged_slots: PAGED_SLOTS,
        page_tokens: PAGE_TOKENS,
        pool_pages: POOL_PAGES,
        requests: REQUESTS,
        prefill_tokens: PREFILL,
        decode_tokens: DECODE,
        fixed_peak_resident: fixed_peak,
        paged_peak_resident: paged_peak,
        concurrency_ratio: if fixed_peak > 0.0 {
            paged_peak / fixed_peak
        } else {
            0.0
        },
        fixed_tok_s,
        paged_tok_s,
    }
}

/// Measures one configuration. All requests arrive at t = 0 (maximal
/// queueing pressure), so sustained tokens/s is output tokens over the
/// serving makespan. Each cell is re-measured [`MEASURE_REPS`] times on a
/// fresh backend (engine construction is excluded — the serving clock
/// only advances on backend operations) and the best repetition wins.
pub fn measure_model(
    cfg: &ModelConfig,
    nodes: usize,
    requests: usize,
    prefill_tokens: usize,
    decode_tokens: usize,
) -> ServeFunctionalReport {
    assert!(
        requests >= BATCH_SWEEP.iter().copied().max().unwrap_or(1),
        "need at least as many requests as the largest batch ceiling, or \
         the largest sweep cell would measure a smaller batch than its label"
    );
    let model = Gpt2Model::synthetic(cfg, 4207);
    let capacity = (prefill_tokens + decode_tokens).min(cfg.max_seq);
    let workload = ArrivalProcess::Trace(vec![0.0; requests]).workload_with_prompts(
        requests,
        &[(prefill_tokens, decode_tokens)],
        cfg.vocab,
        0x5EED,
    );
    let t0 = Instant::now();

    let mut sequential_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let mut backend = fresh_backend(&model, nodes, 1, capacity);
        let report = serve_sequential_on(&mut backend, &workload);
        sequential_tok_s = sequential_tok_s.max(report.tokens_per_second());
    }
    let mut sequential_decode_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let mut backend = fresh_backend(&model, nodes, 1, capacity);
        sequential_decode_tok_s = sequential_decode_tok_s.max(decode_phase_tok_s(
            &mut backend,
            &workload[..1],
            decode_tokens,
        ));
    }

    let batched = BATCH_SWEEP
        .iter()
        .map(|&max_batch| {
            let cfg_serve = ServeConfig::new(max_batch);
            let mut tok_s = 0.0f64;
            for _ in 0..MEASURE_REPS {
                let mut backend = fresh_backend(&model, nodes, max_batch, capacity);
                let report = serve_continuous_on(&mut backend, &workload, &cfg_serve);
                debug_assert_eq!(report.completed(), requests);
                tok_s = tok_s.max(report.tokens_per_second());
            }
            let mut decode_tok_s = 0.0f64;
            for _ in 0..MEASURE_REPS {
                let mut backend = fresh_backend(&model, nodes, max_batch, capacity);
                decode_tok_s = decode_tok_s.max(decode_phase_tok_s(
                    &mut backend,
                    &workload[..max_batch.min(requests)],
                    decode_tokens,
                ));
            }
            BatchPoint {
                max_batch,
                tok_s,
                decode_tok_s,
            }
        })
        .collect();

    let page_pressure = measure_page_pressure(cfg);

    ServeFunctionalReport {
        model: cfg.name.clone(),
        nodes,
        requests,
        prefill_tokens,
        decode_tokens,
        sequential_tok_s,
        sequential_decode_tok_s,
        batched,
        page_pressure,
        wall_s: t0.elapsed().as_secs_f64(),
        quick: false,
    }
}

/// Steady-state decode throughput: admits `residents` (prefill untimed),
/// then times `decode_tokens - 1` full decode iterations with every slot
/// resident, summing the backend-reported elapsed time. This is the
/// Table III decode-only operating point of the serving stack.
fn decode_phase_tok_s(
    backend: &mut FunctionalBackend,
    residents: &[looplynx_serve::Request],
    decode_tokens: usize,
) -> f64 {
    use looplynx_core::backend::InferenceBackend;
    let slots: Vec<usize> = residents
        .iter()
        .map(|r| {
            backend
                .prefill(r.prefill_tokens, r.prompt.as_deref(), r.id)
                .expect("bench workload fits the arena")
                .slot
        })
        .collect();
    let mut decode_ms = 0.0f64;
    let mut tokens = 0usize;
    for _ in 1..decode_tokens {
        let out = backend
            .decode_batch(&slots)
            .expect("bench decodes resident slots");
        decode_ms += out.elapsed_ms;
        tokens += slots.len();
    }
    for slot in slots {
        backend
            .release(slot)
            .expect("bench releases resident slots");
    }
    if decode_ms <= 0.0 {
        return 0.0;
    }
    tokens as f64 / (decode_ms / 1e3)
}

/// Runs the benchmark on the [`medium_shaped`] configuration (gpt2-medium
/// per-layer geometry — the regime where weight streaming dominates and
/// batching pays). `quick` shrinks the *sequences*, never the request
/// count: every [`BATCH_SWEEP`] cell must be able to fill its batch, or
/// the `max_batch: 16` JSON cell would silently report a smaller batch.
pub fn measure(quick: bool) -> ServeFunctionalReport {
    let cfg = medium_shaped();
    let mut report = if quick {
        measure_model(&cfg, 1, 16, 8, 12)
    } else {
        measure_model(&cfg, 1, 16, 16, 32)
    };
    report.quick = quick;
    report
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Renders the report (plus the pinned [`BASELINE`]) as a JSON document.
pub fn to_json(report: &ServeFunctionalReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"baseline\": {{\n    \"captured_at\": \"{}\",\n    \"medium_decode_tok_s_1node\": {},\n    \"tiny_decode_tok_s_1node\": {}\n  }},\n",
        BASELINE.captured_at,
        json_f64(BASELINE.medium_decode_tok_s_1node),
        json_f64(BASELINE.tiny_decode_tok_s_1node),
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!(
        "  \"model\": \"{}\",\n  \"nodes\": {},\n  \"requests\": {},\n  \"prefill_tokens\": {},\n  \"decode_tokens\": {},\n",
        report.model, report.nodes, report.requests, report.prefill_tokens, report.decode_tokens,
    ));
    out.push_str(&format!(
        "  \"sequential_tok_s\": {},\n",
        json_f64(report.sequential_tok_s)
    ));
    out.push_str(&format!(
        "  \"sequential_decode_tok_s\": {},\n",
        json_f64(report.sequential_decode_tok_s)
    ));
    out.push_str("  \"batched\": [\n");
    for (i, p) in report.batched.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"max_batch\": {}, \"tok_s\": {}, \"decode_tok_s\": {}}}{}\n",
            p.max_batch,
            json_f64(p.tok_s),
            json_f64(p.decode_tok_s),
            if i + 1 < report.batched.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batch_scaling\": [\n");
    let scaling = report.batch_scaling();
    for (i, row) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"max_batch\": {}, \"decode_tok_s\": {}, \"speedup_vs_batch1\": {}, \"speedup_vs_sequential_decode\": {}}}{}\n",
            row.max_batch,
            json_f64(row.decode_tok_s),
            json_f64(row.speedup_vs_batch1),
            json_f64(row.speedup_vs_sequential_decode),
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let pp = &report.page_pressure;
    out.push_str(&format!(
        "  \"page_pressure\": {{\n    \"capacity\": {},\n    \"arena_tokens\": {},\n    \"fixed_slots\": {},\n    \"paged_slots\": {},\n    \"page_tokens\": {},\n    \"pool_pages\": {},\n    \"requests\": {},\n    \"prefill_tokens\": {},\n    \"decode_tokens\": {},\n    \"fixed_peak_resident\": {},\n    \"paged_peak_resident\": {},\n    \"concurrency_ratio\": {},\n    \"fixed_tok_s\": {},\n    \"paged_tok_s\": {}\n  }},\n",
        pp.capacity,
        pp.arena_tokens,
        pp.fixed_slots,
        pp.paged_slots,
        pp.page_tokens,
        pp.pool_pages,
        pp.requests,
        pp.prefill_tokens,
        pp.decode_tokens,
        json_f64(pp.fixed_peak_resident),
        json_f64(pp.paged_peak_resident),
        json_f64(pp.concurrency_ratio),
        json_f64(pp.fixed_tok_s),
        json_f64(pp.paged_tok_s),
    ));
    out.push_str(&format!(
        "  \"batch16_speedup_vs_sequential\": {},\n",
        json_f64(report.batch16_speedup_vs_sequential())
    ));
    out.push_str(&format!(
        "  \"batch16_decode_speedup_vs_sequential_decode\": {},\n",
        json_f64(report.batch16_decode_speedup_vs_sequential_decode())
    ));
    out.push_str(&format!(
        "  \"speedup_vs_prechange_single_sequence\": {},\n",
        json_f64(report.batched_decode_tok_s(16) / BASELINE.medium_decode_tok_s_1node)
    ));
    out.push_str(&format!("  \"wall_s\": {}\n}}\n", json_f64(report.wall_s)));
    out
}

/// Renders a human-readable table.
pub fn render(report: &ServeFunctionalReport) -> String {
    let mut out = format!(
        "FUNCTIONAL SERVING — continuous batching vs sequential (host wall-clock)\n\
         model {} on {} node(s): {} requests × [{}:{}]\n\
         sequential baseline : {:>9.1} tok/s e2e, {:>9.1} tok/s decode-phase\n",
        report.model,
        report.nodes,
        report.requests,
        report.prefill_tokens,
        report.decode_tokens,
        report.sequential_tok_s,
        report.sequential_decode_tok_s,
    );
    let batch1 = report.batched_decode_tok_s(1);
    for p in &report.batched {
        out.push_str(&format!(
            "  batch {:>2}          : {:>9.1} tok/s e2e, {:>9.1} tok/s decode-phase ({:>5.2}x seq e2e, {:>5.2}x batch 1)\n",
            p.max_batch,
            p.tok_s,
            p.decode_tok_s,
            if report.sequential_tok_s > 0.0 {
                p.decode_tok_s / report.sequential_tok_s
            } else {
                0.0
            },
            if batch1 > 0.0 {
                p.decode_tok_s / batch1
            } else {
                0.0
            },
        ));
    }
    out.push_str(&format!(
        "pre-change single-sequence decode: {:.1} tok/s ({})\n",
        BASELINE.medium_decode_tok_s_1node, BASELINE.captured_at,
    ));
    let pp = &report.page_pressure;
    out.push_str(&format!(
        "PAGE PRESSURE — equal arena bytes ({} KV tokens), {} requests × [{}:{}]\n\
         \x20 fixed-stride {:>2} slots × {:>3} cap : peak {:>4.1} resident, {:>9.1} tok/s\n\
         \x20 paged {:>2} slots, {:>2}-token pages : peak {:>4.1} resident, {:>9.1} tok/s\n\
         \x20 resident-concurrency ratio       : {:>4.2}x (bar: >= 2)\n",
        pp.arena_tokens,
        pp.requests,
        pp.prefill_tokens,
        pp.decode_tokens,
        pp.fixed_slots,
        pp.capacity,
        pp.fixed_peak_resident,
        pp.fixed_tok_s,
        pp.paged_slots,
        pp.page_tokens,
        pp.paged_peak_resident,
        pp.paged_tok_s,
        pp.concurrency_ratio,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_ordered_throughput() {
        // Full pipeline on the tiny config so the test stays debug-fast:
        // batching must never lose to sequential on a saturating workload.
        let r = measure_model(&ModelConfig::tiny(), 1, 16, 4, 6);
        assert!(r.sequential_tok_s > 0.0);
        for p in &r.batched {
            assert!(p.tok_s > 0.0, "degenerate point {p:?}");
        }
        assert!(
            r.batched_tok_s(4) >= r.batched_tok_s(1) * 0.5,
            "batch 4 collapsed: {r:?}"
        );
    }

    #[test]
    fn page_pressure_doubles_resident_concurrency() {
        // The acceptance bar of the paged-KV work: at equal arena bytes,
        // the paged engine keeps >= 2x the resident requests of the
        // fixed-stride engine on a short-request burst.
        let pp = measure_page_pressure(&ModelConfig::tiny());
        assert_eq!(pp.arena_tokens, pp.pool_pages * pp.page_tokens);
        assert_eq!(pp.arena_tokens, pp.fixed_slots * pp.capacity);
        assert!(
            pp.fixed_peak_resident <= pp.fixed_slots as f64,
            "fixed side exceeded its own slot count: {pp:?}"
        );
        assert!(
            pp.concurrency_ratio >= 2.0,
            "paged arena failed the 2x concurrency bar: {pp:?}"
        );
    }

    #[test]
    fn json_is_wellformed_enough() {
        let report = ServeFunctionalReport {
            model: "medium-shaped".into(),
            nodes: 1,
            requests: 16,
            prefill_tokens: 16,
            decode_tokens: 32,
            sequential_tok_s: 250.0,
            sequential_decode_tok_s: 280.0,
            batched: vec![
                BatchPoint {
                    max_batch: 1,
                    tok_s: 240.0,
                    decode_tok_s: 260.0,
                },
                BatchPoint {
                    max_batch: 16,
                    tok_s: 1200.0,
                    decode_tok_s: 1500.0,
                },
            ],
            page_pressure: PagePressure {
                capacity: 64,
                arena_tokens: 256,
                fixed_slots: 4,
                paged_slots: 16,
                page_tokens: 16,
                pool_pages: 16,
                requests: 16,
                prefill_tokens: 8,
                decode_tokens: 8,
                fixed_peak_resident: 4.0,
                paged_peak_resident: 16.0,
                concurrency_ratio: 4.0,
                fixed_tok_s: 900.0,
                paged_tok_s: 1400.0,
            },
            wall_s: 2.0,
            quick: true,
        };
        let j = to_json(&report);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"baseline\""));
        assert!(j.contains("\"concurrency_ratio\": 4.000"));
        assert!(j.contains("\"batch16_speedup_vs_sequential\": 6.000"));
        assert!(j.contains("\"batch_scaling\""));
        // batch 16 at 1500 decode tok/s over batch 1 at 260.
        assert!(j.contains("\"speedup_vs_batch1\": 5.769"));
        assert!(render(&report).contains("tok/s"));
    }

    #[test]
    fn batch_scaling_rows_mirror_the_sweep() {
        let r = measure_model(&ModelConfig::tiny(), 1, 16, 4, 6);
        let scaling = r.batch_scaling();
        assert_eq!(scaling.len(), r.batched.len());
        for (row, p) in scaling.iter().zip(&r.batched) {
            assert_eq!(row.max_batch, p.max_batch);
            assert!(row.decode_tok_s > 0.0, "degenerate row {row:?}");
            assert!(row.speedup_vs_batch1 > 0.0);
        }
        // batch 1 over itself is exactly 1.
        assert_eq!(scaling[0].max_batch, 1);
        assert_eq!(scaling[0].speedup_vs_batch1, 1.0);
    }
}
