//! Bit-exactness suite for the KV-cache arena: the contiguous head-major
//! layout must preserve the *semantics* of the nested-Vec cache it
//! replaced — `append`/`key_head`/`value_head`/`byte_len` behave
//! identically, with the nested reference reimplemented here from the
//! original definition (`quantize_vec` per `d_head` chunk).

use proptest::prelude::*;

use looplynx_model::attention::attend_all;
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_tensor::quant::{quantize_vec, QuantizedVector};

/// The pre-arena cache: `keys[token][head]`, one `QuantizedVector` per
/// head per token, exactly as `LayerKvCache` stored it before.
struct NestedVecCache {
    d_head: usize,
    keys: Vec<Vec<QuantizedVector>>,
    values: Vec<Vec<QuantizedVector>>,
}

impl NestedVecCache {
    fn new(d_head: usize) -> Self {
        NestedVecCache {
            d_head,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    fn append(&mut self, k: &[f32], v: &[f32]) {
        let quantize_heads = |x: &[f32]| {
            x.chunks_exact(self.d_head)
                .map(quantize_vec)
                .collect::<Vec<_>>()
        };
        self.keys.push(quantize_heads(k));
        self.values.push(quantize_heads(v));
    }

    fn byte_len(&self) -> usize {
        let per_token: usize = self
            .keys
            .first()
            .map_or(0, |heads| heads.iter().map(QuantizedVector::byte_len).sum());
        2 * per_token * self.keys.len()
    }
}

fn arb_vec(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            (((seed as usize).wrapping_mul(29).wrapping_add(i * 23)) % 300) as f32 / 40.0 - 3.75
        })
        .collect()
}

/// Reduced under Miri (interpreted execution is ~100× slower); the CI
/// Miri job still covers the arena's index arithmetic end to end.
const CASES: u32 = if cfg!(miri) { 2 } else { 16 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Arena cache ≡ nested-Vec cache: every per-(token, head) payload,
    /// scale and the byte accounting agree for arbitrary geometries and
    /// sequence lengths — including sequences that outgrow a small
    /// preallocated arena mid-stream.
    #[test]
    fn arena_matches_nested_vec_semantics(
        heads in 1usize..5,
        d_head in prop::sample::select(vec![1usize, 3, 8, 16]),
        tokens in 1usize..40,
        capacity in 1usize..8,
        seed in any::<u64>(),
    ) {
        let d = heads * d_head;
        let mut arena = LayerKvCache::with_capacity(d_head, heads, capacity);
        let mut lazy = LayerKvCache::new(d_head);
        let mut reference = NestedVecCache::new(d_head);
        for t in 0..tokens {
            let k = arb_vec(d, seed.wrapping_add(t as u64 * 5));
            let v = arb_vec(d, seed.wrapping_add(t as u64 * 11 + 1));
            arena.append(&k, &v);
            lazy.append(&k, &v);
            reference.append(&k, &v);
        }
        prop_assert_eq!(arena.len(), tokens);
        prop_assert_eq!(arena.heads(), heads);
        prop_assert_eq!(arena.byte_len(), reference.byte_len());
        prop_assert_eq!(lazy.byte_len(), reference.byte_len());
        for t in 0..tokens {
            for h in 0..heads {
                let rk = &reference.keys[t][h];
                let rv = &reference.values[t][h];
                prop_assert_eq!(arena.key_head(t, h).data(), rk.data(), "key {t}/{h}");
                prop_assert_eq!(arena.key_head(t, h).scale(), rk.scale());
                prop_assert_eq!(arena.value_head(t, h).data(), rv.data(), "value {t}/{h}");
                prop_assert_eq!(arena.value_head(t, h).scale(), rv.scale());
                prop_assert_eq!(lazy.key_head(t, h).data(), rk.data());
                prop_assert_eq!(lazy.value_head(t, h).scale(), rv.scale());
            }
        }
        // the growable and preallocated arenas are interchangeable
        prop_assert_eq!(arena, lazy);
    }

    /// The contiguous strips the attention loop consumes agree with the
    /// per-token views (same arena, two access paths).
    #[test]
    fn strips_agree_with_views(
        heads in 1usize..4,
        tokens in 1usize..12,
        seed in any::<u64>(),
    ) {
        let d_head = 8;
        let d = heads * d_head;
        let mut cache = LayerKvCache::with_capacity(d_head, heads, 4);
        for t in 0..tokens {
            cache.append(
                &arb_vec(d, seed.wrapping_add(t as u64)),
                &arb_vec(d, seed.wrapping_add(400 + t as u64)),
            );
        }
        for h in 0..heads {
            let ks = cache.key_strip(h);
            let vs = cache.value_strip(h);
            prop_assert_eq!(ks.len(), tokens * d_head);
            for t in 0..tokens {
                prop_assert_eq!(&ks[t * d_head..(t + 1) * d_head], cache.key_head(t, h).data());
                prop_assert_eq!(&vs[t * d_head..(t + 1) * d_head], cache.value_head(t, h).data());
                prop_assert_eq!(cache.key_scales(h)[t], cache.key_head(t, h).scale());
                prop_assert_eq!(cache.value_scales(h)[t], cache.value_head(t, h).scale());
            }
        }
    }

    /// Attention over a cache that grew through several reallocations is
    /// bit-identical to attention over a fully preallocated cache.
    #[test]
    fn attention_unaffected_by_arena_growth(
        tokens in 2usize..30,
        seed in any::<u64>(),
    ) {
        let (heads, d_head) = (2usize, 8usize);
        let d = heads * d_head;
        let mut grown = LayerKvCache::with_capacity(d_head, heads, 1);
        let mut fixed = LayerKvCache::with_capacity(d_head, heads, 64);
        for t in 0..tokens {
            let k = arb_vec(d, seed.wrapping_add(t as u64 * 3));
            let v = arb_vec(d, seed.wrapping_add(t as u64 * 13 + 7));
            grown.append(&k, &v);
            fixed.append(&k, &v);
        }
        let q = arb_vec(d, seed ^ 0x5A5A);
        let a = attend_all(&q, &grown, heads, d_head, tokens);
        let b = attend_all(&q, &fixed, heads, d_head, tokens);
        prop_assert_eq!(a, b);
    }
}
