//! Sampling strategies over explicit candidate sets
//! (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::{CaseResult, TestRng};

/// Strategy that picks uniformly from a fixed, non-empty candidate
/// list.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<T> {
        let i = rng.below(self.options.len() as u64) as usize;
        Ok(self.options[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_listed_options() {
        let mut rng = TestRng::from_name("select");
        let s = select(vec![1usize, 2, 4, 8]);
        for _ in 0..100 {
            let v = s.sample_one(&mut rng).unwrap();
            assert!([1, 2, 4, 8].contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn empty_options_panic() {
        let _ = select(Vec::<u8>::new());
    }
}
