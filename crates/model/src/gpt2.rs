//! End-to-end GPT-2: embed → blocks → final LN → LM head.
//!
//! Reproduces the paper's two-stage flow (Fig. 1): [`Gpt2Model::prefill`]
//! runs the prompt through the model to fill the KV cache — outputs of
//! non-final prompt tokens are discarded, so the LM head is only evaluated
//! for the last one — and [`Gpt2Model::decode_step`] generates one token at
//! a time auto-regressively.

use serde::{Deserialize, Serialize};

use looplynx_tensor::norm::layernorm;
use looplynx_tensor::quant::quantize_vec;

use crate::attention::AttnMode;
use crate::block::{block_forward_batch_mode, block_forward_decode_batch_mode, block_forward_mode};
use crate::config::ModelConfig;
use crate::generate::Autoregressive;
use crate::kv_cache::{KvCache, SlotKvArena};
use crate::weights::Gpt2Weights;

#[cfg(test)]
use crate::sampler::Sampler;

/// A GPT-2 model instance with its KV cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpt2Model {
    cfg: ModelConfig,
    weights: Gpt2Weights,
    cache: KvCache,
    pos: usize,
    /// Attention kernel for every forward path (default
    /// [`AttnMode::Materialized`], the bit-exact oracle).
    attn_mode: AttnMode,
}

impl Gpt2Model {
    /// Builds a model with synthetic seeded weights.
    pub fn synthetic(cfg: &ModelConfig, seed: u64) -> Self {
        let weights = Gpt2Weights::synthetic(cfg, seed);
        Self::from_weights(cfg.clone(), weights)
    }

    /// Wraps existing weights.
    ///
    /// The KV arenas start lazy (first append allocates, then doubling
    /// growth re-strides — a handful of copies over a model lifetime):
    /// this model also serves as `DistributedGpt2`'s host-side embedder,
    /// which never touches the cache, so eagerly reserving
    /// `layers × heads × max_seq × d_head × 2` bytes here would be dead
    /// weight per engine. The distributed engine preallocates the caches
    /// it actually appends to (per node, head-sliced) to `max_seq`.
    pub fn from_weights(cfg: ModelConfig, weights: Gpt2Weights) -> Self {
        let cache = KvCache::new(cfg.layers, cfg.d_head());
        Gpt2Model {
            cfg,
            weights,
            cache,
            pos: 0,
            attn_mode: AttnMode::default(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The attention kernel this model evaluates.
    pub fn attn_mode(&self) -> AttnMode {
        self.attn_mode
    }

    /// Selects the attention kernel ([`AttnMode::Fused`] is opt-in and
    /// close-to, not bit-identical with, the materialized default).
    pub fn set_attn_mode(&mut self, mode: AttnMode) {
        self.attn_mode = mode;
    }

    /// The weights (shared with the partitioned multi-node engine).
    pub fn weights(&self) -> &Gpt2Weights {
        &self.weights
    }

    /// Tokens currently in the KV cache.
    pub fn seq_len(&self) -> usize {
        self.pos
    }

    /// The KV cache (for byte accounting).
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Clears the KV cache and resets the position.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.pos = 0;
    }

    /// Embedding lookup: token + positional embedding (host-side in the
    /// paper's system).
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or `pos` exceeds `max_seq`.
    pub fn embed(&self, token: u32, pos: usize) -> Vec<f32> {
        assert!(
            (token as usize) < self.cfg.vocab,
            "token {token} out of vocab"
        );
        assert!(pos < self.cfg.max_seq, "position {pos} beyond max_seq");
        self.weights
            .wte
            .row(token as usize)
            .iter()
            .zip(self.weights.wpe.row(pos))
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Runs one token through every block; computes logits only when
    /// `want_logits` (prefill discards non-final outputs, paper Fig. 1).
    fn forward_token(&mut self, token: u32, want_logits: bool) -> Option<Vec<f32>> {
        assert!(
            self.pos < self.cfg.max_seq,
            "sequence exceeded max_seq {}",
            self.cfg.max_seq
        );
        let mut x = self.embed(token, self.pos);
        for (l, block) in self.weights.blocks.iter().enumerate() {
            x = block_forward_mode(
                &x,
                block,
                self.cache.layer_mut(l),
                &self.cfg,
                self.pos,
                self.attn_mode,
            );
        }
        self.pos += 1;
        if !want_logits {
            return None;
        }
        let h = layernorm(&x, &self.weights.ln_f);
        let hq = quantize_vec(&h);
        Some(self.weights.lm_head.forward(&hq))
    }

    /// Prefill: processes the prompt, fills the KV cache, and returns the
    /// logits after the final prompt token.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or overruns `max_seq`.
    pub fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let (last, rest) = prompt.split_last().expect("non-empty");
        for &t in rest {
            self.forward_token(t, false);
        }
        self.forward_token(*last, true).expect("logits requested")
    }

    /// Decode step: feeds one token and returns next-token logits.
    pub fn decode_step(&mut self, token: u32) -> Vec<f32> {
        self.forward_token(token, true).expect("logits requested")
    }

    /// Batched prefill: processes the whole prompt with one weight pass per
    /// layer per linear (GEMM instead of per-token GEMV) — the functional
    /// counterpart of the accelerator's batched-prefill extension.
    /// Bit-identical to [`Gpt2Model::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty or overruns `max_seq`.
    pub fn prefill_batched(&mut self, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(
            self.pos + prompt.len() <= self.cfg.max_seq,
            "sequence exceeded max_seq {}",
            self.cfg.max_seq
        );
        let start = self.pos;
        let mut xs: Vec<Vec<f32>> = prompt
            .iter()
            .enumerate()
            .map(|(i, &t)| self.embed(t, start + i))
            .collect();
        for (l, block) in self.weights.blocks.iter().enumerate() {
            xs = block_forward_batch_mode(
                &xs,
                block,
                self.cache.layer_mut(l),
                &self.cfg,
                start,
                self.attn_mode,
            );
        }
        self.pos += prompt.len();
        let last = xs.last().expect("non-empty batch");
        let h = layernorm(last, &self.weights.ln_f);
        let hq = quantize_vec(&h);
        self.weights.lm_head.forward(&hq)
    }

    /// Creates a [`SlotKvArena`] sized for this model: `slots` resident
    /// sequences of up to `capacity` tokens each, full head width.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `capacity` is zero or `capacity` exceeds
    /// `max_seq` (positions beyond it have no positional embedding).
    pub fn slot_arena(&self, slots: usize, capacity: usize) -> SlotKvArena {
        assert!(
            capacity <= self.cfg.max_seq,
            "slot capacity {capacity} exceeds max_seq {}",
            self.cfg.max_seq
        );
        SlotKvArena::new(
            self.cfg.layers,
            self.cfg.d_head(),
            self.cfg.heads,
            slots,
            capacity,
        )
    }

    /// Prefills `prompt` into `slot` of `arena` with shared weight passes
    /// (the batched-prefill path against the slot's caches) and returns
    /// the logits after the final prompt token. Bit-identical to
    /// [`Gpt2Model::prefill`] on a fresh model — the model's own cache is
    /// untouched.
    ///
    /// **Suffix-only contract**: processing starts at the slot's current
    /// position, so `prompt` is whatever the KV cache does *not* already
    /// hold. Because int8 GEMM rows accumulate independently and
    /// attention reads the cache as-is, prefilling `[a, b]` then `[c]`
    /// is bit-identical to prefilling `[a, b, c]` in one pass — this is
    /// what lets a prefix cache map shared KV pages for `[a, b]` and
    /// feed only the novel `[c]` here (the engine-level counterpart is
    /// `looplynx-core`'s `prefill_slot_chunk`).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty, the slot would overflow its capacity,
    /// or the arena geometry disagrees with the model.
    pub fn prefill_slot(&self, arena: &mut SlotKvArena, slot: usize, prompt: &[u32]) -> Vec<f32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let start = arena.pos(slot);
        let mut xs: Vec<Vec<f32>> = prompt
            .iter()
            .enumerate()
            .map(|(i, &t)| self.embed(t, start + i))
            .collect();
        for (l, block) in self.weights.blocks.iter().enumerate() {
            xs = block_forward_batch_mode(
                &xs,
                block,
                arena.layer_mut(slot, l),
                &self.cfg,
                start,
                self.attn_mode,
            );
        }
        arena.advance(slot, prompt.len());
        let last = xs.last().expect("non-empty batch");
        let h = layernorm(last, &self.weights.ln_f);
        let hq = quantize_vec(&h);
        self.weights.lm_head.forward(&hq)
    }

    /// One decode step for a batch of resident sequences: entry `t` feeds
    /// `token` to the sequence in `slot` and receives its next-token
    /// logits. Every weight block is tiled across all entries before the
    /// next block streams (see
    /// [`crate::block::block_forward_decode_batch`]), so one weight pass
    /// per layer serves the whole batch — results are bit-identical to
    /// decoding each sequence alone.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, a slot repeats, or any slot would
    /// overflow its capacity.
    pub fn forward_token_batch(
        &self,
        arena: &mut SlotKvArena,
        entries: &[(usize, u32)],
    ) -> Vec<Vec<f32>> {
        assert!(!entries.is_empty(), "batch must not be empty");
        let slots: Vec<usize> = entries.iter().map(|&(s, _)| s).collect();
        let mut xs: Vec<Vec<f32>> = entries
            .iter()
            .map(|&(slot, token)| self.embed(token, arena.pos(slot)))
            .collect();
        for (l, block) in self.weights.blocks.iter().enumerate() {
            xs = block_forward_decode_batch_mode(
                &xs,
                block,
                arena,
                l,
                &slots,
                &self.cfg,
                self.attn_mode,
            );
        }
        for &slot in &slots {
            arena.advance(slot, 1);
        }
        // LM head as one shared GEMM too — the vocab × d_model matrix is
        // the largest in the model, so streaming it per resident would
        // undo the batching win (each row still quantized with its own
        // scale: bit-identical to per-row forward).
        let mut rows8: Vec<i8> = Vec::with_capacity(xs.len() * self.cfg.d_model);
        let mut scales: Vec<f32> = Vec::with_capacity(xs.len());
        for x in &xs {
            let h = layernorm(x, &self.weights.ln_f);
            let hq = quantize_vec(&h);
            rows8.extend_from_slice(hq.data());
            scales.push(hq.scale());
        }
        let stacked = looplynx_tensor::matrix::Matrix::from_vec(xs.len(), self.cfg.d_model, rows8)
            .expect("stacked rows");
        let logits = self.weights.lm_head.forward_batch_scaled(&stacked, &scales);
        (0..xs.len()).map(|t| logits.row(t).to_vec()).collect()
    }
}

impl Autoregressive for Gpt2Model {
    fn prefill(&mut self, prompt: &[u32]) -> Vec<f32> {
        Gpt2Model::prefill(self, prompt)
    }

    fn decode_step(&mut self, token: u32) -> Vec<f32> {
        Gpt2Model::decode_step(self, token)
    }

    fn seq_len(&self) -> usize {
        self.pos
    }

    fn max_seq(&self) -> usize {
        self.cfg.max_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Gpt2Model {
        Gpt2Model::synthetic(&ModelConfig::tiny(), 99)
    }

    #[test]
    fn prefill_returns_vocab_logits() {
        let mut m = model();
        let logits = m.prefill(&[1, 2, 3]);
        assert_eq!(logits.len(), m.config().vocab);
        assert_eq!(m.seq_len(), 3);
    }

    #[test]
    fn prefill_slot_is_suffix_only_and_split_invariant() {
        // The prefix-cache contract: prefilling a prompt in two calls
        // (the cached prefix, then the novel suffix) must be bit-equal
        // to one pass — final logits AND every cached byte.
        let m = model();
        let prompt: Vec<u32> = (0..11).map(|i| (i * 7 + 3) % 50).collect();

        let mut whole = m.slot_arena(1, 32);
        let s_whole = whole.acquire().unwrap();
        let one_pass = m.prefill_slot(&mut whole, s_whole, &prompt);

        let mut split = m.slot_arena(1, 32);
        let s_split = split.acquire().unwrap();
        m.prefill_slot(&mut split, s_split, &prompt[..7]);
        let two_pass = m.prefill_slot(&mut split, s_split, &prompt[7..]);

        assert_eq!(one_pass, two_pass);
        assert_eq!(split.pos(s_split), whole.pos(s_whole));
        for l in 0..m.config().layers {
            assert_eq!(
                whole.layer(s_whole, l),
                split.layer(s_split, l),
                "layer {l} caches diverged across the split"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_with_greedy() {
        let mut a = model();
        let mut b = model();
        let ta = a.generate(&[5, 6], 6, &mut Sampler::greedy());
        let tb = b.generate(&[5, 6], 6, &mut Sampler::greedy());
        assert_eq!(ta, tb);
        assert_eq!(ta.len(), 6);
    }

    #[test]
    fn decode_extends_cache() {
        let mut m = model();
        m.prefill(&[1]);
        m.decode_step(2);
        m.decode_step(3);
        assert_eq!(m.seq_len(), 3);
        assert_eq!(m.cache().seq_len(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = model();
        m.prefill(&[1, 2]);
        m.reset();
        assert_eq!(m.seq_len(), 0);
        assert_eq!(m.cache().byte_len(), 0);
        // usable again after reset
        let logits = m.prefill(&[3]);
        assert_eq!(logits.len(), m.config().vocab);
    }

    #[test]
    fn prefill_then_decode_matches_token_by_token() {
        // Running [a, b] as prefill then decoding c must equal running
        // a, b, c one at a time — the KV-cache equivalence that motivates
        // caching at all.
        let mut fast = model();
        fast.prefill(&[1, 2]);
        let fast_logits = fast.decode_step(3);

        let mut slow = model();
        slow.prefill(&[1]);
        slow.decode_step(2);
        let slow_logits = slow.decode_step(3);

        for (a, b) in fast_logits.iter().zip(&slow_logits) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_prefill_is_bit_identical() {
        let prompt = [1u32, 9, 2, 8, 3, 7];
        let mut seq = model();
        let mut bat = model();
        let a = seq.prefill(&prompt);
        let b = bat.prefill_batched(&prompt);
        assert_eq!(a, b, "batched prefill must match sequential exactly");
        assert_eq!(seq.seq_len(), bat.seq_len());
        // subsequent decoding agrees too (caches are identical)
        assert_eq!(seq.decode_step(4), bat.decode_step(4));
    }

    #[test]
    fn generation_stops_at_max_seq() {
        let mut m = model();
        let max = m.config().max_seq;
        let tokens = m.generate(&[1], max + 50, &mut Sampler::greedy());
        assert!(tokens.len() <= max);
        assert!(m.seq_len() <= max);
    }

    #[test]
    fn slot_prefill_matches_model_prefill_bitwise() {
        let m = model();
        let mut arena = m.slot_arena(2, 16);
        let slot = arena.acquire().unwrap();
        let prompt = [4u32, 7, 1, 9];
        let batched = m.prefill_slot(&mut arena, slot, &prompt);
        let mut reference = model();
        let lone = reference.prefill(&prompt);
        assert_eq!(batched, lone, "slot prefill must be exact");
        assert_eq!(arena.pos(slot), prompt.len());
    }

    #[test]
    fn batched_decode_through_arena_matches_lone_decode() {
        // Two sequences decoded together step by step must produce the
        // same logits as each running alone on its own model.
        let m = model();
        let mut arena = m.slot_arena(2, 24);
        let prompts = [vec![1u32, 2, 3], vec![9u32, 8]];
        let slots: Vec<usize> = prompts
            .iter()
            .map(|p| {
                let s = arena.acquire().unwrap();
                m.prefill_slot(&mut arena, s, p);
                s
            })
            .collect();
        let mut lones: Vec<Gpt2Model> = prompts
            .iter()
            .map(|p| {
                let mut r = model();
                r.prefill(p);
                r
            })
            .collect();
        // One feed pair per step: (token for sequence 0, for sequence 1).
        let steps = [[5u32, 11], [6, 12], [7, 13]];
        for (step, feed) in steps.iter().enumerate() {
            let entries: Vec<(usize, u32)> =
                slots.iter().copied().zip(feed.iter().copied()).collect();
            let batched = m.forward_token_batch(&mut arena, &entries);
            for (i, lone_model) in lones.iter_mut().enumerate() {
                let lone = lone_model.decode_step(feed[i]);
                assert_eq!(batched[i], lone, "sequence {i}, step {step}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn slot_arena_capacity_bounded_by_max_seq() {
        let m = model();
        let _ = m.slot_arena(1, m.config().max_seq + 1);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_token_panics() {
        let m = model();
        let _ = m.embed(9999, 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_prompt_panics() {
        let mut m = model();
        let _ = m.prefill(&[]);
    }
}
