//! Wall-clock hot-path benchmark: functional prefill/decode throughput.
//!
//! Unlike the cycle-accurate experiments (which *simulate* the
//! accelerator), this module measures how fast the host actually executes
//! the functional W8A8 engine — the code path whose memory layout and
//! kernel blocking the hot-path overhaul targets. It times:
//!
//! * prefill tokens/s and decode tokens/s of [`DistributedGpt2`] at
//!   1/2/4 ring nodes, on [`ModelConfig::tiny`] and a
//!   [`medium_shaped`] config (gpt2-medium per-layer geometry with fewer
//!   layers and a small vocabulary so the run stays CI-sized);
//! * the wall-clock of one saturation-rate offered-load sweep cell
//!   (the `serve_sweep` hot loop, which is simulator-bound).
//!
//! The `hotpath` binary renders the report as `BENCH_hotpath.json`,
//! embedding the pre-overhaul baseline ([`BASELINE`]) so every future run
//! reports its speedup against the state of the tree before the arena /
//! blocked-GEMM / threading changes landed.

use std::time::Instant;

use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;

use crate::experiments;

/// Ring sizes measured.
pub const NODE_COUNTS: [usize; 3] = [1, 2, 4];

/// Decode tokens/s of the **pre-overhaul** tree (nested-Vec KV cache,
/// unblocked GEMM, sequential node loop), measured on this repo at the
/// commit immediately before the hot-path overhaul with
/// `hotpath --quick`. Pinned here so `BENCH_hotpath.json` always carries
/// the before/after comparison the overhaul is judged by.
pub const BASELINE: Baseline = Baseline {
    captured_at: "pre-overhaul (best of 3 quick runs before PR 4 landed)",
    tiny_decode_tok_s_1node: 20_693.0,
    tiny_prefill_tok_s_1node: 26_321.0,
    medium_decode_tok_s_1node: 67.99,
};

/// Pre-change reference numbers baked into the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Where the numbers come from.
    pub captured_at: &'static str,
    /// Decode tokens/s, `ModelConfig::tiny()`, 1 node.
    pub tiny_decode_tok_s_1node: f64,
    /// Prefill tokens/s, `ModelConfig::tiny()`, 1 node.
    pub tiny_prefill_tok_s_1node: f64,
    /// Decode tokens/s, [`medium_shaped`], 1 node.
    pub medium_decode_tok_s_1node: f64,
}

/// One measured phase at one ring size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePoint {
    /// Ring size.
    pub nodes: usize,
    /// Tokens processed in the timed region.
    pub tokens: usize,
    /// Wall-clock seconds of the timed region.
    pub wall_s: f64,
}

impl PhasePoint {
    /// Throughput in tokens per second (0.0 for a degenerate measurement).
    pub fn tokens_per_second(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.tokens as f64 / self.wall_s
    }
}

/// Hot-path measurements of one model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHotpath {
    /// Config name (`tiny`, `medium-shaped`).
    pub model: String,
    /// Prefill tokens/s per ring size.
    pub prefill: Vec<PhasePoint>,
    /// Decode tokens/s per ring size.
    pub decode: Vec<PhasePoint>,
}

impl ModelHotpath {
    /// Decode tokens/s at the given ring size (0.0 if not measured).
    pub fn decode_tok_s(&self, nodes: usize) -> f64 {
        self.decode
            .iter()
            .find(|p| p.nodes == nodes)
            .map_or(0.0, PhasePoint::tokens_per_second)
    }

    /// Prefill tokens/s at the given ring size (0.0 if not measured).
    pub fn prefill_tok_s(&self, nodes: usize) -> f64 {
        self.prefill
            .iter()
            .find(|p| p.nodes == nodes)
            .map_or(0.0, PhasePoint::tokens_per_second)
    }
}

/// The full hot-path report.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathReport {
    /// Per-model prefill/decode measurements.
    pub models: Vec<ModelHotpath>,
    /// Wall-clock seconds of one saturation offered-load sweep cell.
    pub serve_sweep_wall_s: f64,
    /// Whether the run used the reduced `--quick` workload.
    pub quick: bool,
}

/// A config with gpt2-medium's per-layer geometry (d=1024, 16 heads,
/// d_ff=4096) but few layers and a small vocabulary, so the benchmark
/// exercises realistic GEMV/GEMM/attention shapes without a 355 MB weight
/// build.
pub fn medium_shaped() -> ModelConfig {
    ModelConfig {
        name: "medium-shaped".into(),
        layers: 4,
        d_model: 1024,
        heads: 16,
        d_ff: 4096,
        vocab: 4096,
        max_seq: 256,
    }
}

/// Timed repetitions per (model, ring size); the best wall-clock of the
/// set is reported, the standard way to strip scheduler noise out of a
/// wall-clock benchmark (the pinned [`BASELINE`] is best-of-3 too, so
/// the comparison stays like-for-like).
pub const MEASURE_REPS: usize = 5;

/// Measures prefill and decode throughput of `cfg` at each ring size.
///
/// `prefill_tokens` tokens are prefilled in the timed prefill region,
/// then `decode_tokens` decode steps are timed. One untimed warm-up
/// generation runs first at each ring size, then [`MEASURE_REPS`] timed
/// repetitions; each phase reports its best repetition.
pub fn measure_model(
    cfg: &ModelConfig,
    prefill_tokens: usize,
    decode_tokens: usize,
) -> ModelHotpath {
    assert!(
        prefill_tokens + decode_tokens <= cfg.max_seq,
        "workload exceeds max_seq"
    );
    let reference = Gpt2Model::synthetic(cfg, 4207);
    let prompt: Vec<u32> = (0..prefill_tokens)
        .map(|i| (i * 31 % cfg.vocab.min(256)) as u32)
        .collect();
    let mut prefill = Vec::new();
    let mut decode = Vec::new();
    for nodes in NODE_COUNTS {
        let mut eng =
            DistributedGpt2::new(&reference, nodes, RingMode::Exact).expect("partitionable");
        // Warm-up: touch every weight shard and the allocator once.
        eng.prefill(&prompt[..prefill_tokens.min(4)]);

        let mut best_prefill = f64::INFINITY;
        let mut best_decode = f64::INFINITY;
        for _ in 0..MEASURE_REPS {
            eng.reset();
            let t0 = Instant::now();
            let mut logits = eng.prefill(&prompt);
            best_prefill = best_prefill.min(t0.elapsed().as_secs_f64());

            let t1 = Instant::now();
            for _ in 0..decode_tokens {
                // Greedy-ish deterministic feedback, no sampler overhead.
                let next = (logits[0].abs() as usize % cfg.vocab.min(256)) as u32;
                logits = eng.decode_step(next);
            }
            best_decode = best_decode.min(t1.elapsed().as_secs_f64());
        }
        prefill.push(PhasePoint {
            nodes,
            tokens: prefill_tokens,
            wall_s: best_prefill,
        });
        decode.push(PhasePoint {
            nodes,
            tokens: decode_tokens,
            wall_s: best_decode,
        });
    }
    ModelHotpath {
        model: cfg.name.clone(),
        prefill,
        decode,
    }
}

/// Runs the full hot-path benchmark. `quick` shrinks the workload to a
/// CI-friendly size (same shapes, fewer tokens/requests).
pub fn measure(quick: bool) -> HotpathReport {
    let tiny = ModelConfig::tiny();
    let (tiny_prefill, tiny_decode) = (24, 39);
    let models = if quick {
        vec![
            measure_model(&tiny, tiny_prefill, tiny_decode),
            measure_model(&medium_shaped(), 8, 8),
        ]
    } else {
        vec![
            measure_model(&tiny, tiny_prefill, tiny_decode),
            measure_model(&medium_shaped(), 32, 32),
        ]
    };
    let requests = if quick { 8 } else { 32 };
    let t0 = Instant::now();
    let _ = experiments::offered_load_sweep_with(
        &ModelConfig::gpt2_medium(),
        &[1, 2, 4],
        &[20.0],
        requests,
        8,
    );
    HotpathReport {
        models,
        serve_sweep_wall_s: t0.elapsed().as_secs_f64(),
        quick,
    }
}

fn json_f64(x: f64) -> String {
    // JSON has no NaN/inf; a baseline that was never captured serializes
    // as null so consumers can tell "absent" from "zero".
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Renders the report (plus the pinned [`BASELINE`]) as a JSON document.
pub fn to_json(report: &HotpathReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"baseline\": {{\n    \"captured_at\": \"{}\",\n    \"tiny_prefill_tok_s_1node\": {},\n    \"tiny_decode_tok_s_1node\": {},\n    \"medium_decode_tok_s_1node\": {}\n  }},\n",
        BASELINE.captured_at,
        json_f64(BASELINE.tiny_prefill_tok_s_1node),
        json_f64(BASELINE.tiny_decode_tok_s_1node),
        json_f64(BASELINE.medium_decode_tok_s_1node),
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"models\": [\n");
    for (i, m) in report.models.iter().enumerate() {
        out.push_str(&format!("    {{\n      \"model\": \"{}\",\n", m.model));
        for (key, points) in [("prefill", &m.prefill), ("decode", &m.decode)] {
            out.push_str(&format!("      \"{key}\": [\n"));
            for (j, p) in points.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"nodes\": {}, \"tokens\": {}, \"wall_s\": {}, \"tok_per_s\": {}}}{}\n",
                    p.nodes,
                    p.tokens,
                    json_f64(p.wall_s),
                    json_f64(p.tokens_per_second()),
                    if j + 1 < points.len() { "," } else { "" }
                ));
            }
            out.push_str(if key == "prefill" {
                "      ],\n"
            } else {
                "      ]\n"
            });
        }
        out.push_str(if i + 1 < report.models.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    let tiny_decode = report
        .models
        .iter()
        .find(|m| m.model == "tiny")
        .map_or(0.0, |m| m.decode_tok_s(1));
    let speedup =
        if BASELINE.tiny_decode_tok_s_1node.is_finite() && BASELINE.tiny_decode_tok_s_1node > 0.0 {
            tiny_decode / BASELINE.tiny_decode_tok_s_1node
        } else {
            f64::NAN
        };
    out.push_str(&format!(
        "  \"tiny_decode_speedup_vs_baseline\": {},\n",
        json_f64(speedup)
    ));
    out.push_str(&format!(
        "  \"serve_sweep_wall_s\": {}\n}}\n",
        json_f64(report.serve_sweep_wall_s)
    ));
    out
}

/// Renders a human-readable table.
pub fn render(report: &HotpathReport) -> String {
    let mut out =
        String::from("HOT-PATH WALL-CLOCK — functional engine throughput (host execution)\n");
    for m in &report.models {
        out.push_str(&format!("model {}\n", m.model));
        out.push_str("  nodes  prefill tok/s   decode tok/s\n");
        for nodes in NODE_COUNTS {
            out.push_str(&format!(
                "  {:>5} {:>14.1} {:>14.1}\n",
                nodes,
                m.prefill_tok_s(nodes),
                m.decode_tok_s(nodes)
            ));
        }
    }
    out.push_str(&format!(
        "serve_sweep saturation cell: {:.2} s wall\n",
        report.serve_sweep_wall_s
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_positive_rates() {
        let m = measure_model(&ModelConfig::tiny(), 8, 8);
        assert_eq!(m.prefill.len(), NODE_COUNTS.len());
        assert_eq!(m.decode.len(), NODE_COUNTS.len());
        for p in m.prefill.iter().chain(&m.decode) {
            assert!(p.tokens_per_second() > 0.0, "degenerate point {p:?}");
        }
    }

    #[test]
    fn json_is_wellformed_enough() {
        let report = HotpathReport {
            models: vec![ModelHotpath {
                model: "tiny".into(),
                prefill: vec![PhasePoint {
                    nodes: 1,
                    tokens: 8,
                    wall_s: 0.5,
                }],
                decode: vec![PhasePoint {
                    nodes: 1,
                    tokens: 8,
                    wall_s: 0.25,
                }],
            }],
            serve_sweep_wall_s: 1.0,
            quick: true,
        };
        let j = to_json(&report);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"baseline\""));
        assert!(j.contains("\"tok_per_s\": 32.000"));
    }

    #[test]
    fn medium_shaped_matches_gpt2_medium_geometry() {
        let m = medium_shaped();
        let full = ModelConfig::gpt2_medium();
        assert_eq!(m.d_model, full.d_model);
        assert_eq!(m.heads, full.heads);
        assert_eq!(m.d_ff, full.d_ff);
        assert!(m.weights_bytes_total() < 60_000_000);
    }

    #[test]
    fn degenerate_phase_point_is_finite() {
        let p = PhasePoint {
            nodes: 1,
            tokens: 4,
            wall_s: 0.0,
        };
        assert_eq!(p.tokens_per_second(), 0.0);
    }
}
