//! Prints every table and figure of the paper in one run — the full
//! reproduction report backing `EXPERIMENTS.md`.
use looplynx_bench::experiments as ex;
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    println!("LoopLynx reproduction report — model: {model}\n");
    print!("{}", ex::render_table1());
    println!();
    print!("{}", ex::render_fig5(&model));
    println!();
    print!("{}", ex::render_fig7());
    println!();
    print!("{}", ex::render_table2(&model));
    println!();
    print!("{}", ex::render_table3(&model));
    println!();
    print!("{}", ex::render_fig8(&model));
}
