//! Latency breakdown buckets (paper Fig. 5).
//!
//! Every simulated token accumulates exposed cycles into four buckets:
//! linear-layer computation (fused MP kernel), multi-head attention (fused
//! MHA kernel), critical-path operators (LN/residual/GELU/quant exposure
//! plus scheduler overheads), and exposed ring synchronization. The paper's
//! Fig. 5 reports the first three as "Linear + MHA ≈ 81.5 %" vs
//! "critical path ≈ 18.5 %" for the unoptimized single node.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use looplynx_sim::time::{Cycles, Frequency};

/// Exposed-cycle totals per latency bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Fused MP kernel activations (all linear layers + LM head).
    pub linear: Cycles,
    /// Fused MHA kernel activations.
    pub mha: Cycles,
    /// Critical-path operators: LN, residual, GELU, exposed quantization,
    /// scheduler stage transitions.
    pub critical_path: Cycles,
    /// Exposed ring-synchronization cycles.
    pub sync: Cycles,
    /// Host-side per-token overhead (embedding, PCIe, sampling).
    pub host: Cycles,
}

impl LatencyBreakdown {
    /// All-zero breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total exposed cycles.
    pub fn total(&self) -> Cycles {
        self.linear + self.mha + self.critical_path + self.sync + self.host
    }

    /// Fraction of device time (host excluded) spent in linear + MHA — the
    /// quantity Fig. 5 tracks.
    pub fn linear_mha_fraction(&self) -> f64 {
        let device = (self.total() - self.host).as_f64();
        if device == 0.0 {
            return 0.0;
        }
        (self.linear + self.mha).as_f64() / device
    }

    /// Fraction of device time on the critical path (incl. exposed sync).
    pub fn critical_path_fraction(&self) -> f64 {
        let device = (self.total() - self.host).as_f64();
        if device == 0.0 {
            return 0.0;
        }
        (self.critical_path + self.sync).as_f64() / device
    }

    /// Milliseconds under the given clock.
    pub fn total_ms(&self, freq: Frequency) -> f64 {
        self.total().to_millis(freq)
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;
    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            linear: self.linear + rhs.linear,
            mha: self.mha + rhs.mha,
            critical_path: self.critical_path + rhs.critical_path,
            sync: self.sync + rhs.sync,
            host: self.host + rhs.host,
        }
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "linear {} | mha {} | critical-path {} | sync {} | host {}",
            self.linear, self.mha, self.critical_path, self.sync, self.host
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LatencyBreakdown {
        LatencyBreakdown {
            linear: Cycles::new(600),
            mha: Cycles::new(215),
            critical_path: Cycles::new(150),
            sync: Cycles::new(35),
            host: Cycles::new(100),
        }
    }

    #[test]
    fn totals_sum_buckets() {
        assert_eq!(sample().total().as_u64(), 1100);
    }

    #[test]
    fn fractions_exclude_host() {
        let b = sample();
        // device time = 1000
        assert!((b.linear_mha_fraction() - 0.815).abs() < 1e-9);
        assert!((b.critical_path_fraction() - 0.185).abs() < 1e-9);
        assert!((b.linear_mha_fraction() + b.critical_path_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_breakdown_is_safe() {
        let z = LatencyBreakdown::zero();
        assert_eq!(z.total(), Cycles::ZERO);
        assert_eq!(z.linear_mha_fraction(), 0.0);
        assert_eq!(z.critical_path_fraction(), 0.0);
    }

    #[test]
    fn addition_accumulates() {
        let mut acc = LatencyBreakdown::zero();
        acc += sample();
        acc += sample();
        assert_eq!(acc.total().as_u64(), 2200);
        assert_eq!(acc.linear.as_u64(), 1200);
    }

    #[test]
    fn display_names_buckets() {
        let s = sample().to_string();
        assert!(s.contains("linear"));
        assert!(s.contains("sync"));
    }
}
