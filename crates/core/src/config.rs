//! Architecture configuration.
//!
//! All hardware parameters of a LoopLynx deployment live here: ring size,
//! kernel clock (285 MHz from the decoupled FIFO design, Section III-D),
//! per-node HBM channel allocation, the `n_group = 32` datapack geometry,
//! and the three latency-optimization flags of Section III-C. The paper's
//! design point is [`ArchConfig::paper`]; the builder lets experiments
//! sweep any dimension.

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_hw::power::FpgaPowerModel;
use looplynx_hw::resources::{NodeResourceModel, ResourceVector};
use looplynx_sim::hbm::HbmChannel;
use looplynx_sim::net::RingSpec;
use looplynx_sim::time::{Cycles, Frequency};

use crate::datapack::DATAPACK_BYTES;

/// Largest number of activation vectors that can share one streamed
/// weight pass (batched prefill and continuous-batching decode alike) —
/// bounded by the on-chip activation buffer.
pub const MAX_WEIGHT_SHARING_BATCH: usize = 64;

/// The latency-optimization techniques of paper Section III-C, each
/// individually switchable for ablation (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizationFlags {
    /// Critical-path optimizing: parallelize LN/residual lanes and overlap
    /// their execution (the fused LN&Res kernel).
    pub fuse_ln_res: bool,
    /// Head-wise pipelining: hide softmax of head *i−1* inside the
    /// attention MACs of head *i*.
    pub headwise_pipeline: bool,
    /// Transmission latency hiding: overlap ring synchronization of block
    /// *i−1* with computation of block *i*.
    pub hide_transmission: bool,
}

impl OptimizationFlags {
    /// All optimizations enabled (the paper's shipping configuration).
    pub const ALL: OptimizationFlags = OptimizationFlags {
        fuse_ln_res: true,
        headwise_pipeline: true,
        hide_transmission: true,
    };

    /// All optimizations disabled (Fig. 5(a) baseline).
    pub const NONE: OptimizationFlags = OptimizationFlags {
        fuse_ln_res: false,
        headwise_pipeline: false,
        hide_transmission: false,
    };
}

impl Default for OptimizationFlags {
    fn default() -> Self {
        OptimizationFlags::ALL
    }
}

/// Error produced when an [`ArchConfigBuilder`] is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid architecture config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A validated LoopLynx hardware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    nodes: usize,
    freq: Frequency,
    mp_channels: usize,
    kv_channels: usize,
    n_group: usize,
    burst_bytes: usize,
    fifo_depth: usize,
    cp_parallelism: usize,
    softmax_lanes: usize,
    quant_latency: Cycles,
    stage_overhead: Cycles,
    host_overhead_us: Option<f64>,
    prefill_batch: usize,
    opts: OptimizationFlags,
}

impl ArchConfig {
    /// The paper's design point: 285 MHz, `n_group = 32`, 10 MP channels +
    /// 4 KV channels per node (14 of the U50's 32 channels per node; a
    /// dual-node device uses 28), all optimizations on.
    pub fn paper() -> Self {
        ArchConfig::builder()
            .build()
            .expect("paper config is valid")
    }

    /// Starts building a configuration from the paper's defaults.
    pub fn builder() -> ArchConfigBuilder {
        ArchConfigBuilder::default()
    }

    /// Ring size (accelerator nodes).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Kernel clock.
    pub fn freq(&self) -> Frequency {
        self.freq
    }

    /// HBM channels feeding the fused MP kernel's slices (per node).
    pub fn mp_channels(&self) -> usize {
        self.mp_channels
    }

    /// HBM channels feeding the fused MHA kernel's K and V caches
    /// (per node, split evenly between keys and values).
    pub fn kv_channels(&self) -> usize {
        self.kv_channels
    }

    /// MAC units per MP slice; also the datapack payload in bytes.
    pub fn n_group(&self) -> usize {
        self.n_group
    }

    /// DMA burst length in bytes.
    pub fn burst_bytes(&self) -> usize {
        self.burst_bytes
    }

    /// Inter-unit FIFO capacity in datapacks.
    pub fn fifo_depth(&self) -> usize {
        self.fifo_depth
    }

    /// Lanes of the critical-path (LN/residual/GELU) units when the fused
    /// LN&Res optimization is on; 1 lane when off.
    pub fn cp_parallelism(&self) -> usize {
        self.cp_parallelism
    }

    /// Effective critical-path lanes under the current flags.
    pub fn effective_cp_lanes(&self) -> usize {
        if self.opts.fuse_ln_res {
            self.cp_parallelism
        } else {
            1
        }
    }

    /// Exponent/divide lanes of the softmax unit.
    pub fn softmax_lanes(&self) -> usize {
        self.softmax_lanes
    }

    /// Pipeline depth of the quantization unit.
    pub fn quant_latency(&self) -> Cycles {
        self.quant_latency
    }

    /// Scheduler state-machine transition cost charged per stage.
    pub fn stage_overhead(&self) -> Cycles {
        self.stage_overhead
    }

    /// Explicit host-overhead override in microseconds, if configured.
    /// `None` (the default) derives the overhead from
    /// [`crate::host::HostModel`] and the model shape.
    pub fn host_overhead_us(&self) -> Option<f64> {
        self.host_overhead_us
    }

    /// Host overhead in kernel-clock cycles for one token of the given
    /// model (uses the override when set, the host model otherwise).
    pub fn host_overhead_cycles(
        &self,
        model: &looplynx_model::config::ModelConfig,
        needs_logits: bool,
    ) -> Cycles {
        match self.host_overhead_us {
            Some(us) => self.freq.cycles_in_seconds(us * 1e-6),
            None => crate::host::HostModel::paper().token_overhead_cycles(
                model,
                needs_logits,
                self.freq,
            ),
        }
    }

    /// Prompt tokens processed per weight pass during prefill.
    ///
    /// `1` is the paper's behaviour (every prompt token streams all
    /// weights). Larger batches are this reproduction's *extension*: the MP
    /// kernel reuses each streamed weight across the batch, packing two
    /// weight-sharing int8 multiplies per DSP per cycle (the standard
    /// Xilinx DSP48 int8 trick applies exactly when the coefficient is
    /// shared) — trading activation buffer for amortized HBM traffic and
    /// narrowing the paper's `[128:32]` loss against the A100.
    pub fn prefill_batch(&self) -> usize {
        self.prefill_batch
    }

    /// The optimization flags.
    pub fn opts(&self) -> OptimizationFlags {
        self.opts
    }

    /// Returns a copy with different optimization flags (for ablations).
    pub fn with_opts(&self, opts: OptimizationFlags) -> ArchConfig {
        ArchConfig {
            opts,
            ..self.clone()
        }
    }

    /// Returns a copy with a different ring size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `nodes` is zero.
    pub fn with_nodes(&self, nodes: usize) -> Result<ArchConfig, ConfigError> {
        if nodes == 0 {
            return Err(ConfigError::new("ring needs at least one node"));
        }
        Ok(ArchConfig {
            nodes,
            ..self.clone()
        })
    }

    /// The per-channel HBM model on this clock.
    pub fn hbm_channel(&self) -> HbmChannel {
        HbmChannel::paper_channel(self.freq)
    }

    /// Effective bytes/cycle of one HBM channel at the configured burst.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        let ch = self.hbm_channel();
        ch.peak_bytes_per_cycle() * ch.burst_efficiency(self.burst_bytes)
    }

    /// The ring network model.
    pub fn ring(&self) -> RingSpec {
        RingSpec::paper_ring(self.nodes, self.freq)
    }

    /// Total HBM channels one node consumes.
    pub fn channels_per_node(&self) -> usize {
        self.mp_channels + self.kv_channels
    }

    /// The resource composition model (paper constants).
    pub fn resource_model(&self) -> NodeResourceModel {
        NodeResourceModel::paper()
    }

    /// Resources of one node in this ring.
    pub fn node_resources(&self) -> ResourceVector {
        self.resource_model().per_node(self.nodes)
    }

    /// Total resources across all devices of this ring.
    pub fn ring_resources(&self) -> ResourceVector {
        self.resource_model().ring_total(self.nodes)
    }

    /// Devices (FPGAs) required.
    pub fn devices(&self) -> usize {
        self.resource_model().devices_for(self.nodes)
    }

    /// The FPGA power model (paper calibration).
    pub fn power_model(&self) -> FpgaPowerModel {
        FpgaPowerModel::paper()
    }

    /// Board power in watts at the given average activity.
    pub fn power_watts(&self, activity: f64) -> f64 {
        self.power_model().total_watts(
            self.devices(),
            &self.node_resources(),
            self.nodes,
            self.channels_per_node(),
            activity,
        )
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LoopLynx x{} @ {} ({} MP + {} KV ch/node, n_group={})",
            self.nodes, self.freq, self.mp_channels, self.kv_channels, self.n_group
        )
    }
}

/// Builder for [`ArchConfig`] (paper defaults).
#[derive(Debug, Clone)]
pub struct ArchConfigBuilder {
    nodes: usize,
    freq_mhz: f64,
    mp_channels: usize,
    kv_channels: usize,
    n_group: usize,
    burst_bytes: usize,
    fifo_depth: usize,
    cp_parallelism: usize,
    softmax_lanes: usize,
    quant_latency: u64,
    stage_overhead: u64,
    host_overhead_us: Option<f64>,
    prefill_batch: usize,
    opts: OptimizationFlags,
}

impl Default for ArchConfigBuilder {
    fn default() -> Self {
        ArchConfigBuilder {
            nodes: 2,
            freq_mhz: 285.0,
            mp_channels: 10,
            kv_channels: 4,
            n_group: 32,
            burst_bytes: 4096,
            fifo_depth: 64,
            cp_parallelism: 8,
            softmax_lanes: 4,
            quant_latency: 24,
            stage_overhead: 400,
            host_overhead_us: None,
            prefill_batch: 1,
            opts: OptimizationFlags::ALL,
        }
    }
}

impl ArchConfigBuilder {
    /// Sets the ring size.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the kernel clock in MHz.
    pub fn freq_mhz(mut self, mhz: f64) -> Self {
        self.freq_mhz = mhz;
        self
    }

    /// Sets MP-kernel HBM channels per node.
    pub fn mp_channels(mut self, ch: usize) -> Self {
        self.mp_channels = ch;
        self
    }

    /// Sets KV-cache HBM channels per node (even; half keys, half values).
    pub fn kv_channels(mut self, ch: usize) -> Self {
        self.kv_channels = ch;
        self
    }

    /// Sets MACs per MP slice (= datapack bytes).
    pub fn n_group(mut self, n: usize) -> Self {
        self.n_group = n;
        self
    }

    /// Sets DMA burst bytes.
    pub fn burst_bytes(mut self, b: usize) -> Self {
        self.burst_bytes = b;
        self
    }

    /// Sets inter-unit FIFO depth (datapacks).
    pub fn fifo_depth(mut self, d: usize) -> Self {
        self.fifo_depth = d;
        self
    }

    /// Sets critical-path lanes used when `fuse_ln_res` is on.
    pub fn cp_parallelism(mut self, lanes: usize) -> Self {
        self.cp_parallelism = lanes;
        self
    }

    /// Sets softmax unit lanes.
    pub fn softmax_lanes(mut self, lanes: usize) -> Self {
        self.softmax_lanes = lanes;
        self
    }

    /// Sets quantization-unit pipeline depth in cycles.
    pub fn quant_latency(mut self, cycles: u64) -> Self {
        self.quant_latency = cycles;
        self
    }

    /// Sets scheduler stage-transition overhead in cycles.
    pub fn stage_overhead(mut self, cycles: u64) -> Self {
        self.stage_overhead = cycles;
        self
    }

    /// Overrides the host per-token overhead in microseconds (otherwise
    /// derived from [`crate::host::HostModel`]).
    pub fn host_overhead_us(mut self, us: f64) -> Self {
        self.host_overhead_us = Some(us);
        self
    }

    /// Sets the prefill batch (1 = paper behaviour; see
    /// [`ArchConfig::prefill_batch`]).
    pub fn prefill_batch(mut self, batch: usize) -> Self {
        self.prefill_batch = batch;
        self
    }

    /// Sets the optimization flags.
    pub fn opts(mut self, opts: OptimizationFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a parameter is out of range or the
    /// channel allocation exceeds the device (14 channels/node × 2
    /// nodes/device must fit the U50's 32 channels).
    pub fn build(self) -> Result<ArchConfig, ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::new("ring needs at least one node"));
        }
        if self.mp_channels == 0 {
            return Err(ConfigError::new("MP kernel needs at least one channel"));
        }
        if self.kv_channels == 0 || !self.kv_channels.is_multiple_of(2) {
            return Err(ConfigError::new(
                "KV channels must be positive and even (split between K and V)",
            ));
        }
        if self.n_group == 0 || !self.n_group.is_power_of_two() {
            return Err(ConfigError::new("n_group must be a power of two"));
        }
        if self.n_group != DATAPACK_BYTES {
            // Allowed, but the datapack constant tracks the paper's 32.
            if self.n_group > 256 {
                return Err(ConfigError::new("n_group larger than 256 is unrealistic"));
            }
        }
        if !(50.0..=600.0).contains(&self.freq_mhz) {
            return Err(ConfigError::new("frequency out of FPGA kernel range"));
        }
        if self.burst_bytes == 0 || self.burst_bytes > 4096 {
            return Err(ConfigError::new("burst must be 1..=4096 bytes"));
        }
        if self.fifo_depth == 0 {
            return Err(ConfigError::new("FIFO depth must be positive"));
        }
        if self.cp_parallelism == 0 || self.softmax_lanes == 0 {
            return Err(ConfigError::new("unit parallelism must be positive"));
        }
        if self.host_overhead_us.is_some_and(|us| us < 0.0) {
            return Err(ConfigError::new("host overhead cannot be negative"));
        }
        if self.prefill_batch == 0 || self.prefill_batch > MAX_WEIGHT_SHARING_BATCH {
            return Err(ConfigError::new(format!(
                "prefill batch must be 1..={MAX_WEIGHT_SHARING_BATCH} \
                 (bounded by on-chip activation buffer)"
            )));
        }
        let per_node = self.mp_channels + self.kv_channels;
        let model = NodeResourceModel::paper();
        let nodes_per_device = model.nodes_per_device().min(self.nodes.max(1));
        if per_node * nodes_per_device > 32 {
            return Err(ConfigError::new(format!(
                "{per_node} channels/node x {nodes_per_device} nodes/device exceeds the 32 HBM channels of a U50"
            )));
        }
        Ok(ArchConfig {
            nodes: self.nodes,
            freq: Frequency::from_mhz(self.freq_mhz),
            mp_channels: self.mp_channels,
            kv_channels: self.kv_channels,
            n_group: self.n_group,
            burst_bytes: self.burst_bytes,
            fifo_depth: self.fifo_depth,
            cp_parallelism: self.cp_parallelism,
            softmax_lanes: self.softmax_lanes,
            quant_latency: Cycles::new(self.quant_latency),
            stage_overhead: Cycles::new(self.stage_overhead),
            host_overhead_us: self.host_overhead_us,
            prefill_batch: self.prefill_batch,
            opts: self.opts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_builds() {
        let c = ArchConfig::paper();
        assert_eq!(c.nodes(), 2);
        assert_eq!(c.n_group(), 32);
        assert!((c.freq().as_mhz() - 285.0).abs() < 1e-9);
        assert_eq!(c.channels_per_node(), 14);
        assert_eq!(c.devices(), 1);
    }

    #[test]
    fn four_nodes_need_two_devices() {
        let c = ArchConfig::builder().nodes(4).build().unwrap();
        assert_eq!(c.devices(), 2);
        let one = ArchConfig::builder().nodes(1).build().unwrap();
        assert_eq!(one.devices(), 1);
    }

    #[test]
    fn channel_efficiency_near_peak() {
        let c = ArchConfig::paper();
        let eff = c.channel_bytes_per_cycle();
        let peak = c.hbm_channel().peak_bytes_per_cycle();
        assert!(
            eff > 0.9 * peak,
            "burst efficiency too low: {eff} vs {peak}"
        );
    }

    #[test]
    fn builder_validations() {
        assert!(ArchConfig::builder().nodes(0).build().is_err());
        assert!(ArchConfig::builder().mp_channels(0).build().is_err());
        assert!(ArchConfig::builder().kv_channels(3).build().is_err());
        assert!(ArchConfig::builder().n_group(33).build().is_err());
        assert!(ArchConfig::builder().freq_mhz(10.0).build().is_err());
        assert!(ArchConfig::builder().burst_bytes(0).build().is_err());
        assert!(ArchConfig::builder().fifo_depth(0).build().is_err());
        assert!(ArchConfig::builder()
            .host_overhead_us(-1.0)
            .build()
            .is_err());
    }

    #[test]
    fn channel_budget_enforced() {
        // 20 MP + 4 KV per node × 2 nodes/device = 48 > 32 channels
        let err = ArchConfig::builder().mp_channels(20).build().unwrap_err();
        assert!(err.to_string().contains("HBM channels"));
        // but a single-node ring only places one node per device
        assert!(ArchConfig::builder()
            .nodes(1)
            .mp_channels(20)
            .build()
            .is_ok());
    }

    #[test]
    fn effective_cp_lanes_follow_flag() {
        let on = ArchConfig::paper();
        assert_eq!(on.effective_cp_lanes(), 8);
        let off = on.with_opts(OptimizationFlags::NONE);
        assert_eq!(off.effective_cp_lanes(), 1);
    }

    #[test]
    fn with_nodes_rebuilds() {
        let c = ArchConfig::paper().with_nodes(4).unwrap();
        assert_eq!(c.nodes(), 4);
        assert!(ArchConfig::paper().with_nodes(0).is_err());
    }

    #[test]
    fn power_scales_with_nodes() {
        let p1 = ArchConfig::builder()
            .nodes(1)
            .build()
            .unwrap()
            .power_watts(1.0);
        let p2 = ArchConfig::builder()
            .nodes(2)
            .build()
            .unwrap()
            .power_watts(1.0);
        let p4 = ArchConfig::builder()
            .nodes(4)
            .build()
            .unwrap()
            .power_watts(1.0);
        assert!(p1 < p2 && p2 < p4);
        // 4 nodes = 2 boards: roughly double the 2-node board power
        assert!(p4 > 1.8 * p2 && p4 < 2.2 * p2);
    }

    #[test]
    fn display_mentions_ring() {
        assert!(ArchConfig::paper().to_string().contains("x2"));
    }
}
