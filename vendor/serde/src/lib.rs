//! Offline stand-in for the real `serde` crate (see `vendor/README.md`).
//!
//! Exposes `Serialize` / `Deserialize` as *marker traits* plus the
//! same-named no-op derive macros, which is all this workspace needs to
//! compile. No serialization is actually performed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// The no-op derive does not implement this trait; it exists so that
/// `use serde::{Serialize, Deserialize}` resolves in both the type and
/// macro namespaces, exactly like the real crate's prelude.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
