//! The datapack — LoopLynx's unit of data movement.
//!
//! "The DMA engine runs in burst mode to load concatenated
//! `n_group × 8-bit` datapacks onto the chip. We set `n_group = 32` to
//! ensure a sufficient burst size" (paper Section III-D). Routers forward
//! the same 32-byte packs between nodes.

use serde::{Deserialize, Serialize};

/// Bytes per datapack (`n_group × 8 bit`).
pub const DATAPACK_BYTES: usize = 32;

/// Number of datapacks needed to carry `bytes` (rounded up).
pub const fn datapacks_for(bytes: usize) -> usize {
    bytes.div_ceil(DATAPACK_BYTES)
}

/// A 32-byte pack of int8 payload as moved by DMA engines and routers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPack {
    payload: Vec<i8>,
}

impl DataPack {
    /// Wraps exactly one pack of data.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != DATAPACK_BYTES`.
    pub fn new(payload: Vec<i8>) -> Self {
        assert_eq!(payload.len(), DATAPACK_BYTES, "datapack must be 32 bytes");
        DataPack { payload }
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[i8] {
        &self.payload
    }

    /// Splits a byte stream into datapacks, zero-padding the tail.
    pub fn pack_stream(data: &[i8]) -> Vec<DataPack> {
        data.chunks(DATAPACK_BYTES)
            .map(|chunk| {
                let mut payload = chunk.to_vec();
                payload.resize(DATAPACK_BYTES, 0);
                DataPack { payload }
            })
            .collect()
    }

    /// Reassembles a byte stream from packs, truncating to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the packs carry fewer than `len` bytes.
    pub fn unpack_stream(packs: &[DataPack], len: usize) -> Vec<i8> {
        let mut out: Vec<i8> = packs
            .iter()
            .flat_map(|p| p.payload.iter().copied())
            .collect();
        assert!(out.len() >= len, "stream shorter than requested length");
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datapack_count_rounds_up() {
        assert_eq!(datapacks_for(0), 0);
        assert_eq!(datapacks_for(1), 1);
        assert_eq!(datapacks_for(32), 1);
        assert_eq!(datapacks_for(33), 2);
        assert_eq!(datapacks_for(1024), 32);
    }

    #[test]
    fn pack_unpack_round_trips() {
        let data: Vec<i8> = (0..77).map(|i| (i % 127) as i8 - 63).collect();
        let packs = DataPack::pack_stream(&data);
        assert_eq!(packs.len(), 3);
        let back = DataPack::unpack_stream(&packs, data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn tail_is_zero_padded() {
        let packs = DataPack::pack_stream(&[1i8, 2, 3]);
        assert_eq!(packs.len(), 1);
        assert_eq!(&packs[0].payload()[..3], &[1, 2, 3]);
        assert!(packs[0].payload()[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "32 bytes")]
    fn wrong_size_rejected() {
        let _ = DataPack::new(vec![0i8; 16]);
    }

    #[test]
    #[should_panic(expected = "shorter than requested")]
    fn unpack_checks_length() {
        let packs = DataPack::pack_stream(&[1i8; 10]);
        let _ = DataPack::unpack_stream(&packs, 100);
    }
}
