//! Row-major dense matrices.
//!
//! Weights in the accelerator are stored row-major in HBM so that one output
//! channel's dot product is a contiguous burst — [`Matrix::row`] is therefore
//! the natural unit both for the functional math and for DMA byte
//! accounting.
//!
//! A matrix either owns its buffer or is a zero-copy view into a
//! memory-mapped checkpoint arena ([`Matrix::from_arena`]). The two are
//! indistinguishable through the read API; the first mutation of a mapped
//! matrix silently copies it to the heap (weights are never mutated at
//! inference time, so the hot path stays zero-copy).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::ShapeError;
use crate::mmap::{ArenaError, MappedArena};

/// Marker for element types that may be reinterpreted from raw mapped
/// bytes: no padding, no invalid bit patterns, no drop glue.
///
/// # Safety
///
/// Implementors must guarantee every possible byte pattern of
/// `size_of::<Self>()` bytes is a valid value of `Self`. That holds for
/// the primitive numeric types implemented here and essentially nothing
/// else; do not implement this for structs or enums.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: every bit pattern is a valid value for each primitive numeric
// type below; none has padding or drop glue.
unsafe impl Pod for i8 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for u8 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for i16 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for u16 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for i32 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for u32 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for i64 {}
// SAFETY: see the i8 impl.
unsafe impl Pod for u64 {}
// SAFETY: every 32-bit pattern is a valid f32 (NaNs included).
unsafe impl Pod for f32 {}
// SAFETY: every 64-bit pattern is a valid f64 (NaNs included).
unsafe impl Pod for f64 {}

/// Backing storage: an owned buffer, or a typed window into a shared
/// read-only arena.
#[derive(Debug, Serialize, Deserialize)]
enum Buf<T> {
    /// Heap-owned elements.
    Owned(Vec<T>),
    /// `len` elements starting at `ptr`, which points into `arena`'s
    /// bytes. Invariants (established by [`Matrix::from_arena`], the sole
    /// constructor of this variant): the range is in bounds, `ptr` is
    /// aligned for `T`, `T: Pod`, and the arena is never written.
    Mapped {
        /// Keeps the mapping alive for as long as this view exists.
        arena: Arc<MappedArena>,
        /// First element (aligned, in bounds — see variant docs).
        ptr: *const T,
        /// Element count.
        len: usize,
    },
}

// SAFETY: `Owned` is a Vec (Send iff T: Send); `Mapped` is an immutable
// view into a read-only arena that is itself Send + Sync, and the raw
// pointer is never written through, so moving the view across threads
// cannot race.
unsafe impl<T: Send> Send for Buf<T> {}
// SAFETY: shared access only ever reads — the arena is `PROT_READ` and
// `Owned` mutation requires `&mut self` — so `&Buf` is race-free.
unsafe impl<T: Sync> Sync for Buf<T> {}

impl<T> Buf<T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Buf::Owned(v) => v,
            Buf::Mapped { ptr, len, .. } => {
                // SAFETY: the variant invariants guarantee `ptr..ptr+len`
                // is an in-bounds, aligned, initialized range of `T: Pod`
                // values inside the arena, which the `arena` Arc keeps
                // alive for the lifetime of `&self`.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Buf::Owned(v) => v.len(),
            Buf::Mapped { len, .. } => *len,
        }
    }
}

impl<T: Copy> Buf<T> {
    /// Copy-on-write escape hatch: returns the owned buffer, copying out
    /// of the arena first if this is a mapped view.
    fn make_owned(&mut self) -> &mut Vec<T> {
        if let Buf::Mapped { .. } = self {
            *self = Buf::Owned(self.as_slice().to_vec());
        }
        match self {
            Buf::Owned(v) => v,
            // make_owned above replaced the variant
            Buf::Mapped { .. } => unreachable!("just converted to Owned"),
        }
    }

    fn into_vec(self) -> Vec<T> {
        match self {
            Buf::Owned(v) => v,
            Buf::Mapped { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T: Clone> Clone for Buf<T> {
    fn clone(&self) -> Self {
        match self {
            Buf::Owned(v) => Buf::Owned(v.clone()),
            Buf::Mapped { arena, ptr, len } => Buf::Mapped {
                arena: Arc::clone(arena),
                ptr: *ptr,
                len: *len,
            },
        }
    }
}

/// A dense row-major `rows × cols` matrix.
///
/// # Example
///
/// ```
/// use looplynx_tensor::matrix::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
/// assert_eq!(m.row(1), &[3, 4, 5]);
/// assert_eq!(m.get(0, 2), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Buf<T>,
}

impl<T: PartialEq> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.as_slice() == other.data.as_slice()
    }
}

impl<T: Eq> Eq for Matrix<T> {}

impl<T: Pod> Matrix<T> {
    /// Builds a zero-copy view of `rows × cols` elements starting
    /// `byte_offset` bytes into `arena`. The matrix holds a reference to
    /// the arena, so the mapping stays alive as long as any view does.
    ///
    /// # Errors
    ///
    /// [`ArenaError::OutOfBounds`] if the element range overruns the
    /// arena, [`ArenaError::Misaligned`] if `byte_offset` lands on an
    /// address not aligned for `T`.
    pub fn from_arena(
        rows: usize,
        cols: usize,
        arena: &Arc<MappedArena>,
        byte_offset: usize,
    ) -> Result<Self, ArenaError> {
        let len = rows.checked_mul(cols).ok_or(ArenaError::OutOfBounds {
            end: usize::MAX,
            len: arena.len(),
        })?;
        let byte_len =
            len.checked_mul(std::mem::size_of::<T>())
                .ok_or(ArenaError::OutOfBounds {
                    end: usize::MAX,
                    len: arena.len(),
                })?;
        arena.check_range(byte_offset, byte_len, std::mem::align_of::<T>())?;
        let ptr = arena.bytes()[byte_offset..].as_ptr() as *const T;
        Ok(Matrix {
            rows,
            cols,
            data: Buf::Mapped {
                arena: Arc::clone(arena),
                ptr,
                len,
            },
        })
    }

    /// Whether this matrix still reads straight out of a checkpoint arena
    /// (false once a mutation has forced the copy-on-write).
    pub fn is_arena_view(&self) -> bool {
        matches!(self.data, Buf::Mapped { .. })
    }
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a zero-initialized (default-initialized) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: Buf::Owned(vec![T::default(); rows * cols]),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix {
            rows,
            cols,
            data: Buf::Owned(data),
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (1, data.len())));
        }
        Ok(Matrix {
            rows,
            cols,
            data: Buf::Owned(data),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data.as_slice()[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        let idx = r * self.cols + c;
        self.data.make_owned()[idx] = v;
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r` (copies a mapped matrix to the heap first).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds");
        let (start, end) = (r * self.cols, (r + 1) * self.cols);
        &mut self.data.make_owned()[start..end]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.as_slice().chunks_exact(self.cols)
    }

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix<T> {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: Buf::Owned(self.data.as_slice()[start * self.cols..end * self.cols].to_vec()),
        }
    }

    /// Transposed copy.
    ///
    /// Walks the source row by row (each source row scatters into one
    /// destination column) instead of per-element bounds-checked `get`
    /// calls — the source side, at least, streams contiguously.
    pub fn transposed(&self) -> Matrix<T> {
        let mut data = vec![T::default(); self.rows * self.cols];
        for (r, row) in self.iter_rows().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                data[c * self.rows + r] = v;
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data: Buf::Owned(data),
        }
    }

    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Consumes the matrix, returning its buffer (copied to the heap if
    /// it was a mapped view).
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_vec()
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if column counts differ.
    pub fn vstack(&self, other: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError::new(
                "vstack",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        let mut data = self.data.as_slice().to_vec();
        data.extend_from_slice(other.data.as_slice());
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data: Buf::Owned(data),
        })
    }
}

impl Matrix<f32> {
    /// Largest absolute value per row (used for per-output-channel scales).
    pub fn row_absmax(&self) -> Vec<f32> {
        self.iter_rows()
            .map(|r| r.iter().fold(0.0f32, |m, &x| m.max(x.abs())))
            .collect()
    }

    /// Largest absolute value per column (used by SmoothQuant migration).
    pub fn col_absmax(&self) -> Vec<f32> {
        let mut maxes = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (m, &x) in maxes.iter_mut().zip(row) {
                *m = m.max(x.abs());
            }
        }
        maxes
    }

    /// Multiplies column `c` by `factors[c]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != cols`.
    pub fn scale_cols(&mut self, factors: &[f32]) {
        assert_eq!(factors.len(), self.cols, "one factor per column");
        for row in self.data.make_owned().chunks_exact_mut(self.cols) {
            for (x, &f) in row.iter_mut().zip(factors) {
                *x *= f;
            }
        }
    }
}

impl<T: fmt::Display + Copy + Default> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        let show = self.rows.min(4);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|x| format!("{x}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", ..." } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 23);
        assert_eq!(m.row(1), &[10, 11, 12, 13]);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1, 2, 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(m.get(1, 1), 4);
    }

    #[test]
    fn set_and_row_mut() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        m.set(0, 1, 7);
        m.row_mut(1)[0] = 9;
        assert_eq!(m.as_slice(), &[0, 7, 9, 0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_fn(4, 2, |r, _| r as i32);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1, 1]);
        assert_eq!(s.row(1), &[2, 2]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_fn(1, 2, |_, c| c as i32);
        let b = Matrix::from_fn(2, 2, |r, _| r as i32 + 10);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[0, 1]);
        assert_eq!(s.row(2), &[11, 11]);
        let bad = Matrix::<i32>::zeros(1, 3);
        assert!(a.vstack(&bad).is_err());
    }

    #[test]
    fn absmax_helpers() {
        let m = Matrix::from_vec(2, 2, vec![1.0f32, -4.0, 3.0, 2.0]).unwrap();
        assert_eq!(m.row_absmax(), vec![4.0, 3.0]);
        assert_eq!(m.col_absmax(), vec![3.0, 4.0]);
    }

    #[test]
    fn scale_cols_applies_per_column() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        m.scale_cols(&[2.0, 0.5]);
        assert_eq!(m.as_slice(), &[2.0, 1.0, 6.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::<i32>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::<i32>::zeros(10, 10);
        let s = m.to_string();
        assert!(s.contains("[10x10]"));
        assert!(s.contains("..."));
    }

    #[test]
    fn arena_view_reads_without_copying() {
        let arena = MappedArena::from_bytes((0u8..24).map(|b| b as i8 as u8).collect());
        let m = Matrix::<i8>::from_arena(4, 6, &arena, 0).unwrap();
        assert!(m.is_arena_view());
        assert_eq!(m.get(1, 2), 8);
        assert_eq!(m.row(3), &[18, 19, 20, 21, 22, 23]);
        // equality across backings
        let owned = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as i8);
        assert_eq!(m, owned);
    }

    #[test]
    fn arena_view_copy_on_write() {
        let arena = MappedArena::from_bytes(vec![1, 2, 3, 4]);
        let mut m = Matrix::<i8>::from_arena(2, 2, &arena, 0).unwrap();
        m.set(0, 0, 9);
        assert!(!m.is_arena_view(), "mutation must detach from the arena");
        assert_eq!(m.as_slice(), &[9, 2, 3, 4]);
        // arena itself is untouched
        assert_eq!(arena.bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn arena_view_rejects_overrun_and_misalignment() {
        let arena = MappedArena::from_bytes(vec![0; 16]);
        assert!(Matrix::<i8>::from_arena(4, 5, &arena, 0).is_err());
        assert!(Matrix::<i8>::from_arena(usize::MAX, 2, &arena, 0).is_err());
        // f32 needs 4-alignment; some offset in 1..=4 is misaligned.
        let misaligned = (1..=4).any(|off| Matrix::<f32>::from_arena(1, 2, &arena, off).is_err());
        assert!(misaligned);
    }

    #[test]
    fn arena_view_clone_shares_mapping() {
        let arena = MappedArena::from_bytes(vec![5; 8]);
        let m = Matrix::<i8>::from_arena(2, 4, &arena, 0).unwrap();
        let c = m.clone();
        assert!(c.is_arena_view());
        assert_eq!(c, m);
        assert_eq!(c.into_vec(), vec![5; 8]);
    }
}
