//! Micro-benchmarks of the overhauled functional hot path: the SIMD int8
//! dot, blocked GEMM vs the naive reference, the arena-backed attention
//! loop, and the f32 critical-path operators that remain scalar
//! (layernorm / GELU / softmax / quantize), so regressions in any single
//! stage are visible in isolation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use looplynx_model::attention::{attend_heads_into, AttnScratch};
use looplynx_model::kv_cache::LayerKvCache;
use looplynx_tensor::activation::{gelu_vec, softmax_into};
use looplynx_tensor::linear::{gemm_i32, gemm_i32_naive, gemv_i32_into, QuantLinear};
use looplynx_tensor::matrix::Matrix;
use looplynx_tensor::norm::{layernorm, LayerNormParams};
use looplynx_tensor::quant::{quantize_into, quantize_vec};
use looplynx_tensor::simd::{dot_i8_i32, dot_i8_i32_scalar};

fn i8_vec(len: usize, seed: usize) -> Vec<i8> {
    (0..len)
        .map(|i| ((i * 37 + seed) % 255) as i8 - 127)
        .collect()
}

fn f32_vec(len: usize, seed: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 13 + seed) as f32 * 0.173).sin())
        .collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_i8");
    for len in [16usize, 64, 1024] {
        let a = i8_vec(len, 1);
        let b = i8_vec(len, 5);
        group.bench_with_input(BenchmarkId::new("simd", len), &len, |bch, _| {
            bch.iter(|| dot_i8_i32(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |bch, _| {
            bch.iter(|| dot_i8_i32_scalar(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let w = Matrix::from_fn(1024, 1024, |r, c2| ((r * 31 + c2 * 7) % 255) as i8 - 127);
    let x = i8_vec(1024, 3);
    let mut out = Vec::new();
    c.bench_function("gemv_i32_into_1024x1024", |b| {
        b.iter(|| gemv_i32_into(black_box(&w), black_box(&x), &mut out).expect("shapes"))
    });
}

fn bench_gemm(c: &mut Criterion) {
    let w = Matrix::from_fn(1024, 1024, |r, c2| ((r * 31 + c2 * 7) % 255) as i8 - 127);
    let x = Matrix::from_fn(16, 1024, |t, c2| ((t * 11 + c2) % 255) as i8 - 127);
    let mut group = c.benchmark_group("gemm_16x1024x1024");
    group.bench_function("blocked", |b| {
        b.iter(|| gemm_i32(black_box(&w), black_box(&x)).expect("shapes"))
    });
    group.bench_function("naive", |b| {
        b.iter(|| gemm_i32_naive(black_box(&w), black_box(&x)).expect("shapes"))
    });
    group.finish();
}

fn bench_attend(c: &mut Criterion) {
    // gpt2-medium geometry: 16 heads × 64 d_head over a 512-token cache.
    let (heads, d_head, ctx) = (16usize, 64usize, 512usize);
    let mut cache = LayerKvCache::with_capacity(d_head, heads, ctx);
    for t in 0..ctx {
        let k = f32_vec(heads * d_head, t);
        let v = f32_vec(heads * d_head, t + 9000);
        cache.append(&k, &v);
    }
    let q = f32_vec(heads * d_head, 77);
    let mut scratch = AttnScratch::new();
    let mut out = Vec::new();
    c.bench_function("attend_16h_64d_ctx512", |b| {
        b.iter(|| {
            attend_heads_into(
                black_box(&q),
                &cache,
                0..heads,
                0,
                d_head,
                ctx,
                &mut scratch,
                &mut out,
            )
        })
    });
}

fn bench_critical_path_ops(c: &mut Criterion) {
    let x = f32_vec(1024, 2);
    let ln = LayerNormParams::identity(1024);
    c.bench_function("layernorm_1024", |b| {
        b.iter(|| layernorm(black_box(&x), &ln))
    });
    let g = f32_vec(4096, 4);
    c.bench_function("gelu_4096", |b| b.iter(|| gelu_vec(black_box(&g))));
    let scores = f32_vec(512, 6);
    let mut weights = Vec::new();
    c.bench_function("softmax_into_512", |b| {
        b.iter(|| softmax_into(black_box(&scores), &mut weights))
    });
    let mut q8 = Vec::new();
    c.bench_function("quantize_into_1024", |b| {
        b.iter(|| quantize_into(black_box(&x), &mut q8))
    });
    let w = Matrix::from_fn(1024, 1024, |r, c2| ((r + c2) as f32 * 0.001).sin() * 0.1);
    let lin = QuantLinear::from_f32(&w, &vec![0.0f32; 1024]).expect("bias");
    let xq = quantize_vec(&x);
    let mut out = Vec::new();
    c.bench_function("quantlinear_forward_into_1024x1024", |b| {
        b.iter(|| lin.forward_into(black_box(&xq), &mut out))
    });
}

criterion_group!(
    benches,
    bench_dot,
    bench_gemv,
    bench_gemm,
    bench_attend,
    bench_critical_path_ops
);
criterion_main!(benches);
