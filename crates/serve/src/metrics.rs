//! Aggregated serving metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

use looplynx_sim::stats::{Percentiles, Summary};

use crate::request::RequestMetrics;

/// The tokens one request actually generated (token-producing backends
/// only; timing-only runs have no outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedOutput {
    /// Request identifier.
    pub id: u64,
    /// Output tokens in generation order (first token sampled from the
    /// prefill logits, the rest one per decode iteration).
    pub tokens: Vec<u32>,
}

/// Outcome of serving one workload: per-request records plus the
/// latency-percentile aggregates serving systems are judged by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// One record per completed request, in completion order.
    pub requests: Vec<RequestMetrics>,
    /// Generated tokens per request, in completion order — empty when the
    /// backend is timing-only (the sim engine schedules passes, it does
    /// not compute logits).
    pub outputs: Vec<GeneratedOutput>,
    /// Decode iterations the scheduler ran.
    pub decode_iterations: u64,
    /// Concurrent requests per decode iteration (mean is the effective
    /// batch occupancy; 1.0 means no batching ever happened).
    pub batch_occupancy: Summary,
    /// Time-to-first-token distribution (ms).
    pub ttft_ms: Percentiles,
    /// Time-per-output-token distribution (ms; single-token requests are
    /// excluded — they have no decode phase).
    pub tpot_ms: Percentiles,
    /// End-to-end latency distribution (ms).
    pub e2e_ms: Percentiles,
}

impl ServingReport {
    /// Aggregates per-request records into a report (no generated
    /// tokens — the timing-backend shape).
    pub fn new(
        requests: Vec<RequestMetrics>,
        decode_iterations: u64,
        batch_occupancy: Summary,
    ) -> Self {
        Self::with_outputs(requests, Vec::new(), decode_iterations, batch_occupancy)
    }

    /// Aggregates per-request records plus their generated tokens.
    pub fn with_outputs(
        requests: Vec<RequestMetrics>,
        outputs: Vec<GeneratedOutput>,
        decode_iterations: u64,
        batch_occupancy: Summary,
    ) -> Self {
        let mut ttft_ms = Percentiles::new();
        let mut tpot_ms = Percentiles::new();
        let mut e2e_ms = Percentiles::new();
        for r in &requests {
            ttft_ms.add(r.ttft_ms());
            e2e_ms.add(r.e2e_ms());
            if r.decode_tokens > 1 {
                tpot_ms.add(r.tpot_ms());
            }
        }
        ServingReport {
            requests,
            outputs,
            decode_iterations,
            batch_occupancy,
            ttft_ms,
            tpot_ms,
            e2e_ms,
        }
    }

    /// The generated tokens of request `id`, if the backend produced any.
    pub fn output_tokens(&self, id: u64) -> Option<&[u32]> {
        self.outputs
            .iter()
            .find(|o| o.id == id)
            .map(|o| o.tokens.as_slice())
    }

    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.requests.len()
    }

    /// Total output tokens produced across all requests.
    pub fn total_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.decode_tokens).sum()
    }

    /// Wall-clock span from the first arrival to the last completion (ms);
    /// `0.0` for an empty report.
    pub fn makespan_ms(&self) -> f64 {
        let first = self
            .requests
            .iter()
            .map(|r| r.arrival_ms)
            .fold(f64::INFINITY, f64::min);
        let last = self
            .requests
            .iter()
            .map(|r| r.completion_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        if last > first {
            last - first
        } else {
            0.0
        }
    }

    /// Sustained output throughput in tokens per second over the makespan;
    /// `0.0` for a degenerate (empty or zero-span) report.
    pub fn tokens_per_second(&self) -> f64 {
        let span_ms = self.makespan_ms();
        if span_ms <= 0.0 {
            return 0.0;
        }
        self.total_tokens() as f64 / (span_ms / 1e3)
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} requests, {} tokens in {:.1} ms ({:.1} tok/s, mean batch {:.2})",
            self.completed(),
            self.total_tokens(),
            self.makespan_ms(),
            self.tokens_per_second(),
            self.batch_occupancy.mean(),
        )?;
        writeln!(f, "  TTFT  {}", self.ttft_ms)?;
        writeln!(f, "  TPOT  {}", self.tpot_ms)?;
        write!(f, "  E2E   {}", self.e2e_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: f64, first: f64, done: f64, decode: usize) -> RequestMetrics {
        RequestMetrics {
            id,
            arrival_ms: arrival,
            first_token_ms: first,
            completion_ms: done,
            prefill_tokens: 16,
            decode_tokens: decode,
        }
    }

    #[test]
    fn report_aggregates_percentiles() {
        let report = ServingReport::new(
            vec![
                record(0, 0.0, 10.0, 100.0, 10),
                record(1, 5.0, 40.0, 120.0, 5),
            ],
            13,
            Summary::new(),
        );
        assert_eq!(report.completed(), 2);
        assert_eq!(report.total_tokens(), 15);
        assert!((report.makespan_ms() - 120.0).abs() < 1e-12);
        assert!((report.tokens_per_second() - 125.0).abs() < 1e-9);
        assert_eq!(report.ttft_ms.count(), 2);
        assert_eq!(report.ttft_ms.p50(), Some(10.0));
        assert_eq!(report.ttft_ms.p99(), Some(35.0));
    }

    #[test]
    fn empty_report_is_degenerate_but_finite() {
        let report = ServingReport::new(Vec::new(), 0, Summary::new());
        assert_eq!(report.tokens_per_second(), 0.0);
        assert_eq!(report.makespan_ms(), 0.0);
        assert_eq!(report.ttft_ms.p50(), None);
    }

    #[test]
    fn single_token_requests_excluded_from_tpot() {
        let report = ServingReport::new(
            vec![record(0, 0.0, 10.0, 10.0, 1), record(1, 0.0, 20.0, 60.0, 5)],
            4,
            Summary::new(),
        );
        assert_eq!(report.tpot_ms.count(), 1);
        assert_eq!(report.tpot_ms.p50(), Some(10.0));
    }
}
