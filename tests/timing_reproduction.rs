//! Integration tests asserting the *shape* of every quantitative claim in
//! the paper's evaluation: who wins, by roughly what factor, and where the
//! crossovers fall.

use looplynx::baselines::gpu::A100Model;
use looplynx::baselines::spatial::SpatialArch;
use looplynx::baselines::temporal::TemporalArch;
use looplynx::core::config::OptimizationFlags;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::ModelConfig;
use looplynx_bench::experiments::{self, TABLE2_CONTEXT};
use looplynx_bench::paper;

fn engine(nodes: usize) -> LoopLynx {
    LoopLynx::new(
        ModelConfig::gpt2_medium(),
        ArchConfig::builder().nodes(nodes).build().expect("valid"),
    )
    .expect("partitions")
}

#[test]
fn table2_latencies_within_10_percent_of_paper() {
    for (nodes, paper_ms) in [1usize, 2, 4].iter().zip(paper::TABLE2_LOOPLYNX_MS) {
        let ms = engine(*nodes).steady_state_decode_ms(TABLE2_CONTEXT);
        assert!(
            paper::deviation(ms, paper_ms).abs() < 0.10,
            "{nodes}-node: {ms:.2} ms vs paper {paper_ms}"
        );
    }
}

#[test]
fn table2_full_ordering_matches_paper() {
    let ll1 = engine(1).steady_state_decode_ms(TABLE2_CONTEXT);
    let ll2 = engine(2).steady_state_decode_ms(TABLE2_CONTEXT);
    let ll4 = engine(4).steady_state_decode_ms(TABLE2_CONTEXT);
    let model = ModelConfig::gpt2_medium();
    let dfx = TemporalArch::dfx_u280().token_latency_ms(&model);
    let spatial = SpatialArch::u280().decode_token_ms(&model);
    // Paper Table II: 2.55 < 3.85 < 4.17 < 5.37 < 6.59
    assert!(ll4 < ll2, "4-node beats 2-node");
    assert!(
        ll2 < spatial,
        "2-node beats the spatial architecture (1.08x)"
    );
    assert!(spatial < dfx, "spatial beats DFX");
    assert!(dfx < ll1, "1-node is the slowest FPGA configuration");
    // Speedup factors from the paper's abstract: 2.11x over DFX, 1.64x
    // over spatial for the 4-node configuration (±15 %).
    assert!(
        (paper::deviation(dfx / ll4, 2.11)).abs() < 0.15,
        "{}",
        dfx / ll4
    );
    assert!(
        (paper::deviation(spatial / ll4, 1.64)).abs() < 0.15,
        "{}",
        spatial / ll4
    );
}

#[test]
fn table3_throughput_and_speedups() {
    let rows = experiments::table3(&ModelConfig::gpt2_medium());
    for (row, paper_tps) in rows.iter().zip(paper::TABLE3_TOKENS_PER_S) {
        assert!(
            paper::deviation(row.tokens_per_second, paper_tps).abs() < 0.10,
            "{}-node: {:.1} tok/s vs paper {paper_tps}",
            row.nodes,
            row.tokens_per_second
        );
    }
    let s21 = rows[1].speedup_vs_previous.expect("2-node row");
    let s42 = rows[2].speedup_vs_previous.expect("4-node row");
    assert!((s21 - paper::TABLE3_SPEEDUPS[0]).abs() < 0.12);
    assert!((s42 - paper::TABLE3_SPEEDUPS[1]).abs() < 0.12);
    assert!(s42 < s21, "scaling efficiency must decrease");
}

#[test]
fn fig5_breakdown_and_optimization_gains() {
    let levels = experiments::fig5(&ModelConfig::gpt2_medium());
    // (a) baseline split near 81.5 / 18.5
    assert!(
        (levels[0].linear_mha_fraction - paper::FIG5_LINEAR_MHA_FRACTION).abs() < 0.06,
        "baseline linear+MHA {}",
        levels[0].linear_mha_fraction
    );
    // (b) fused LN&Res saves ≈11 %
    assert!(
        (levels[1].reduction_vs_baseline - paper::FIG5_FUSION_REDUCTION).abs() < 0.04,
        "fusion saves {}",
        levels[1].reduction_vs_baseline
    );
    // (c) cumulative ≈15 %
    assert!(
        (levels[2].reduction_vs_baseline - paper::FIG5_CUMULATIVE_REDUCTION).abs() < 0.04,
        "cumulative {}",
        levels[2].reduction_vs_baseline
    );
}

#[test]
fn fig8_average_speedups_and_energy() {
    let data = experiments::fig8(&ModelConfig::gpt2_medium());
    // 2-node ≈1.67x, 4-node ≈2.52x vs A100 (±0.25)
    assert!(
        (data.mean_speedup[1] - paper::FIG8_SPEEDUP_VS_A100[0]).abs() < 0.25,
        "2-node speedup {}",
        data.mean_speedup[1]
    );
    assert!(
        (data.mean_speedup[2] - paper::FIG8_SPEEDUP_VS_A100[1]).abs() < 0.3,
        "4-node speedup {}",
        data.mean_speedup[2]
    );
    // energy fractions ≈37.3 % / 48.1 % (±10 points)
    assert!(
        (data.mean_energy_fraction[1] - paper::FIG8_ENERGY_FRACTION[0]).abs() < 0.10,
        "2-node energy fraction {}",
        data.mean_energy_fraction[1]
    );
    assert!(
        (data.mean_energy_fraction[2] - paper::FIG8_ENERGY_FRACTION[1]).abs() < 0.10,
        "4-node energy fraction {}",
        data.mean_energy_fraction[2]
    );
    // 2-node is the most energy-efficient configuration
    assert!(data.mean_energy_efficiency[1] > data.mean_energy_efficiency[0]);
    assert!(data.mean_energy_efficiency[1] > data.mean_energy_efficiency[2]);
    // and every LoopLynx configuration beats the A100 on tokens/J
    for eff in data.mean_energy_efficiency {
        assert!(eff > 1.0, "efficiency {eff}");
    }
}

#[test]
fn fig8_crossover_a100_wins_prefill_heavy_only() {
    let model = ModelConfig::gpt2_medium();
    let gpu = A100Model::paper_baseline();
    let two = engine(2);
    // prefill-heavy [128:32]: A100 wins (paper: "A100 performs better")
    let f = two.simulate_generation(128, 32);
    let g = gpu.generation(&model, 128, 32);
    assert!(
        g.total_ms < f.total_ms(),
        "A100 should win [128:32]: {} vs {}",
        g.total_ms,
        f.total_ms()
    );
    // decode-heavy [32:512]: LoopLynx wins
    let f2 = two.simulate_generation(32, 512);
    let g2 = gpu.generation(&model, 32, 512);
    assert!(
        f2.total_ms() < g2.total_ms,
        "LoopLynx should win [32:512]: {} vs {}",
        f2.total_ms(),
        g2.total_ms
    );
}

#[test]
fn optimizations_help_at_every_ring_size() {
    for nodes in [1usize, 2, 4] {
        let on = engine(nodes).steady_state_decode_ms(TABLE2_CONTEXT);
        let arch_off = ArchConfig::builder()
            .nodes(nodes)
            .opts(OptimizationFlags::NONE)
            .build()
            .expect("valid");
        let off = LoopLynx::new(ModelConfig::gpt2_medium(), arch_off)
            .expect("partitions")
            .steady_state_decode_ms(TABLE2_CONTEXT);
        assert!(
            on < off,
            "{nodes}-node: optimized {on} vs unoptimized {off}"
        );
    }
}

#[test]
fn transmission_hiding_matters_more_with_more_nodes() {
    let model = ModelConfig::gpt2_medium();
    let mut gains = Vec::new();
    for nodes in [2usize, 4] {
        let hidden = engine(nodes).steady_state_decode_ms(TABLE2_CONTEXT);
        let arch = ArchConfig::builder()
            .nodes(nodes)
            .opts(OptimizationFlags {
                hide_transmission: false,
                ..OptimizationFlags::ALL
            })
            .build()
            .expect("valid");
        let exposed = LoopLynx::new(model.clone(), arch)
            .expect("partitions")
            .steady_state_decode_ms(TABLE2_CONTEXT);
        gains.push(exposed - hidden);
        assert!(exposed > hidden, "{nodes}-node hiding must help");
    }
    assert!(
        gains[1] > gains[0],
        "more nodes expose more sync: {gains:?}"
    );
}

#[test]
fn resource_rows_match_table2() {
    let rows = experiments::table2(&ModelConfig::gpt2_medium());
    // LoopLynx rows in 4/2/1 order; check DSP and BRAM against the paper
    let expect = [(2264.0, 1609.0), (1132.0, 924.5), (568.0, 641.0)];
    for (row, (dsp, bram)) in rows[..3].iter().zip(expect) {
        assert!(
            (row.resources.dsp - dsp).abs() / dsp < 0.01,
            "{}: DSP {} vs {}",
            row.nodes_desc,
            row.resources.dsp,
            dsp
        );
        assert!(
            (row.resources.bram - bram).abs() / bram < 0.01,
            "{}: BRAM {} vs {}",
            row.nodes_desc,
            row.resources.bram,
            bram
        );
    }
    // baseline rows carry the paper's constants
    assert_eq!(rows[3].resources.dsp, 3533.0);
    assert_eq!(rows[4].resources.dsp, 1780.0);
}

#[test]
fn energy_per_token_ordering_across_all_five_systems() {
    // J/token during long-form decode: LoopLynx 2-node best, A100 worst.
    let model = ModelConfig::gpt2_medium();
    let ll2 = engine(2).simulate_generation(32, 256);
    let ll2_jpt = ll2.energy.joules / 256.0;
    let gpu = A100Model::paper_baseline().generation(&model, 32, 256);
    let gpu_jpt = gpu.energy_joules / 256.0;
    let dfx_jpt = TemporalArch::dfx_u280().energy_per_token_j(&model);
    let spatial_jpt = SpatialArch::u280().energy_per_token_j(&model);
    assert!(ll2_jpt < spatial_jpt, "{ll2_jpt} vs spatial {spatial_jpt}");
    assert!(spatial_jpt < dfx_jpt);
    assert!(ll2_jpt < gpu_jpt, "{ll2_jpt} vs gpu {gpu_jpt}");
}
