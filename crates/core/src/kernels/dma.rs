//! DMA engines.
//!
//! Each MP slice "is connected to an HBM channel via the DMA engine"; the
//! engine "runs in burst mode to load concatenated n_group×8-bit datapacks"
//! (paper Section III-D). [`DmaEngine`] answers how long a given transfer
//! occupies its channels.

use serde::{Deserialize, Serialize};

use looplynx_sim::hbm::HbmChannel;
use looplynx_sim::time::Cycles;

use crate::config::ArchConfig;

/// A group of DMA engines striping one logical stream over several HBM
/// channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaEngine {
    channel: HbmChannel,
    channels: usize,
    burst_bytes: usize,
}

impl DmaEngine {
    /// Creates an engine over `channels` channels of the configured HBM.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(cfg: &ArchConfig, channels: usize) -> Self {
        assert!(channels > 0, "DMA needs at least one channel");
        DmaEngine {
            channel: cfg.hbm_channel(),
            channels,
            burst_bytes: cfg.burst_bytes(),
        }
    }

    /// Channels striped over.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Cycles to stream `bytes` striped evenly over the channels.
    pub fn transfer_cycles(&self, bytes: usize) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_channel = bytes.div_ceil(self.channels);
        self.channel.transfer_cycles(per_channel, self.burst_bytes)
    }

    /// Effective aggregate bandwidth in bytes/cycle at the configured burst.
    pub fn effective_bytes_per_cycle(&self) -> f64 {
        self.channels as f64
            * self.channel.peak_bytes_per_cycle()
            * self.channel.burst_efficiency(self.burst_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ArchConfig {
        ArchConfig::paper()
    }

    #[test]
    fn more_channels_are_faster() {
        let one = DmaEngine::new(&cfg(), 1);
        let ten = DmaEngine::new(&cfg(), 10);
        let bytes = 1 << 20;
        let t1 = one.transfer_cycles(bytes).as_f64();
        let t10 = ten.transfer_cycles(bytes).as_f64();
        assert!((t1 / t10 - 10.0).abs() < 0.2, "ratio {}", t1 / t10);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(DmaEngine::new(&cfg(), 4).transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn effective_bandwidth_close_to_peak() {
        let e = DmaEngine::new(&cfg(), 10);
        let peak = 10.0 * cfg().hbm_channel().peak_bytes_per_cycle();
        let eff = e.effective_bytes_per_cycle();
        assert!(eff > 0.9 * peak && eff <= peak);
    }

    #[test]
    fn transfer_monotone_in_bytes() {
        let e = DmaEngine::new(&cfg(), 4);
        let mut last = Cycles::ZERO;
        for kb in [1usize, 4, 16, 64, 256] {
            let t = e.transfer_cycles(kb * 1024);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = DmaEngine::new(&cfg(), 0);
    }
}
