//! The rule engine's own test wall: every rule fires on its negative
//! fixture, stays silent on its positive fixture, and the lexer
//! resyncs after every literal form Rust can throw at it.

use looplynx_lint::lint_source;
use looplynx_lint::rules::{
    RULE_BOUNDED_CHANNEL, RULE_DETERMINISM, RULE_PANIC_FREE, RULE_SAFETY_COMMENT,
};

/// Each fixture is linted as if it lived at a path its rule guards.
const SERVE_PATH: &str = "crates/serve/src/gateway.rs";
const MODEL_PATH: &str = "crates/model/src/fixture.rs";
const ANY_PATH: &str = "crates/tensor/src/fixture.rs";

#[test]
fn panic_free_fires_on_negative_fixture() {
    let findings = lint_source(SERVE_PATH, include_str!("../fixtures/panic_free_bad.rs"));
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RULE_PANIC_FREE)
        .collect();
    assert!(
        hits.len() >= 5,
        "expected unwrap/expect/panic!/todo!/unimplemented! all flagged, got {hits:?}"
    );
}

#[test]
fn panic_free_silent_on_positive_fixture() {
    let findings = lint_source(SERVE_PATH, include_str!("../fixtures/panic_free_ok.rs"));
    assert!(
        findings.is_empty(),
        "comments, strings, combinators, waivers and test code must pass: {findings:?}"
    );
}

#[test]
fn safety_comment_fires_on_negative_fixture() {
    let findings = lint_source(ANY_PATH, include_str!("../fixtures/safety_bad.rs"));
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RULE_SAFETY_COMMENT)
        .collect();
    assert!(
        hits.len() >= 2,
        "both the bare unsafe block and the bare unsafe fn must be flagged: {hits:?}"
    );
}

#[test]
fn safety_comment_silent_on_positive_fixture() {
    let findings = lint_source(ANY_PATH, include_str!("../fixtures/safety_ok.rs"));
    assert!(
        findings.is_empty(),
        "SAFETY comments above, trailing, and `# Safety` docs through an \
         attribute stack must all be accepted: {findings:?}"
    );
}

#[test]
fn determinism_fires_on_negative_fixture() {
    let findings = lint_source(MODEL_PATH, include_str!("../fixtures/determinism_bad.rs"));
    let rules_hit: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RULE_DETERMINISM)
        .collect();
    assert!(
        rules_hit.len() >= 6,
        "Instant, SystemTime, HashMap, HashSet, DefaultHasher and \
         RandomState must all be flagged: {rules_hit:?}"
    );
}

#[test]
fn determinism_silent_on_positive_fixture_and_outside_scope() {
    let src = include_str!("../fixtures/determinism_ok.rs");
    let findings = lint_source(MODEL_PATH, src);
    assert!(findings.is_empty(), "{findings:?}");
    // The same offending source outside the bit-exact crates is fine.
    let bad = include_str!("../fixtures/determinism_bad.rs");
    assert!(
        lint_source("crates/hw/src/fixture.rs", bad).is_empty(),
        "determinism rule must not fire outside model/core::backend"
    );
}

#[test]
fn bounded_channel_fires_on_negative_fixture() {
    let findings = lint_source(
        "crates/serve/src/stream.rs",
        include_str!("../fixtures/channel_bad.rs"),
    );
    assert!(
        findings.iter().any(|f| f.rule == RULE_BOUNDED_CHANNEL),
        "unbounded channel() in serve must be flagged: {findings:?}"
    );
}

#[test]
fn bounded_channel_silent_on_positive_fixture() {
    let findings = lint_source(
        "crates/serve/src/stream.rs",
        include_str!("../fixtures/channel_ok.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lexer_resyncs_after_every_literal_form() {
    let findings = lint_source(SERVE_PATH, include_str!("../fixtures/lexer_edge.rs"));
    assert_eq!(
        findings.len(),
        1,
        "exactly the one real offender after the literal gauntlet: {findings:?}"
    );
    assert_eq!(findings[0].rule, RULE_PANIC_FREE);
    assert!(
        findings[0].line >= 16,
        "the finding must be the trailing unwrap, not a literal misread \
         (line {})",
        findings[0].line
    );
}
