//! Runtime-dispatched SIMD inner kernel for the int8 MAC loop.
//!
//! Every hot kernel in this crate (GEMV, GEMM, attention scores) bottoms
//! out in the same operation the accelerator's MAC array performs: an
//! `i8 × i8 → i32` dot product. Integer addition is associative, so a
//! vectorized accumulation is **bit-identical** to the scalar loop — this
//! module only changes how fast the exact same number is produced.
//!
//! On x86-64 the AVX2 path widens 16 int8 lanes to int16
//! (`vpmovsxbw`), multiply-accumulates pairs into int32 (`vpmaddwd` —
//! products of int8 values fit int16 pairs losslessly: |x·y| ≤ 16384,
//! and the pairwise add of two such products fits int32), and folds the
//! vector accumulator horizontally at the end. Feature detection is a
//! cached atomic load, cheap enough to keep even on short head-dim dots.
//! Other architectures (and CPUs without AVX2) use the scalar loop.

/// Integer dot product with i32 accumulation: `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length (debug builds; release builds
/// truncate to the shorter slice like `zip`, matching the scalar path).
#[inline]
pub fn dot_i8_i32(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if a.len() >= 16 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { dot_i8_i32_avx2(a, b) };
        }
    }
    dot_i8_i32_scalar(a, b)
}

/// The scalar reference MAC loop (also the test oracle for the SIMD path).
#[inline]
pub fn dot_i8_i32_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// AVX2 dot product: 16 int8 lanes per iteration via sign-extend +
/// `vpmaddwd`, exact i32 accumulation.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (e.g. via
/// `is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_i32_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
        _mm256_extracti128_si256, _mm256_madd_epi16, _mm256_setzero_si256, _mm_add_epi32,
        _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
    };
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n keeps both 16-byte loads in bounds.
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    // Horizontal fold of the 8 i32 lanes.
    let mut s = _mm_add_epi32(
        _mm256_extracti128_si256(acc, 1),
        _mm256_castsi256_si128(acc),
    );
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    total
}

/// Largest absolute value of the slice (0.0 when empty).
///
/// `max` over finite f32 values is associative and commutative, so the
/// vectorized lane-fold returns the bit-identical result of the scalar
/// left fold.
#[inline]
pub fn absmax(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if xs.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { absmax_avx2(xs) };
        }
    }
    absmax_scalar(xs)
}

/// Scalar reference absmax (also the test oracle for the SIMD path).
#[inline]
pub fn absmax_scalar(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn absmax_avx2(xs: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_andnot_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_loadu_ps,
        _mm256_max_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm_cvtss_f32, _mm_max_ps, _mm_movehl_ps,
        _mm_shuffle_ps,
    };
    let sign_mask = _mm256_set1_ps(-0.0);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= xs.len() {
        // SAFETY: i + 8 <= len keeps the 32-byte load in bounds.
        let v = _mm256_loadu_ps(xs.as_ptr().add(i));
        // Operand order matters for NaN parity with the scalar fold:
        // maxps returns its *second* operand when either is NaN, so the
        // data must be first and the accumulator second — a NaN element
        // is then ignored (like `f32::max`) instead of poisoning the
        // lane for the rest of the fold.
        acc = _mm256_max_ps(_mm256_andnot_ps(sign_mask, v), acc);
        i += 8;
    }
    let mut m = _mm_max_ps(_mm256_extractf128_ps(acc, 1), _mm256_castps256_ps128(acc));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, 0b01));
    let mut best = _mm_cvtss_f32(m);
    while i < xs.len() {
        best = best.max(xs[i].abs());
        i += 1;
    }
    best
}

/// Quantizes `src` under `scale` into `dst` with round-to-nearest-even
/// and saturation to ±127 — element-for-element the math of
/// `quant::quantize_value` (`(x / scale).round_ties_even().clamp(…)`),
/// vectorized. Division, rounding and clamping are lane-wise, so each
/// output byte is bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if `src` and `dst` lengths differ.
#[inline]
pub fn quantize_slice(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if src.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { quantize_slice_avx2(src, scale, dst) };
            return;
        }
    }
    quantize_slice_scalar(src, scale, dst);
}

/// Scalar reference quantization loop (also the SIMD test oracle).
#[inline]
pub fn quantize_slice_scalar(src: &[f32], scale: f32, dst: &mut [i8]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        let q = (x / scale).round_ties_even();
        *d = q.clamp(-127.0, 127.0) as i8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_slice_avx2(src: &[f32], scale: f32, dst: &mut [i8]) {
    use std::arch::x86_64::{
        _mm256_cvtps_epi32, _mm256_div_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps,
        _mm256_round_ps, _mm256_set1_ps, _mm256_storeu_si256, _MM_FROUND_NO_EXC,
        _MM_FROUND_TO_NEAREST_INT,
    };
    let vscale = _mm256_set1_ps(scale);
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    let n = src.len();
    let mut i = 0;
    let mut lanes = [0i32; 8];
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the load in bounds; `lanes` is 32 bytes.
        let v = _mm256_loadu_ps(src.as_ptr().add(i));
        let q = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_div_ps(v, vscale),
        );
        let c = _mm256_max_ps(lo, _mm256_min_ps(hi, q));
        // The value is already integral and within i8 range, so the
        // i32 conversion and narrowing cast are exact.
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut _, _mm256_cvtps_epi32(c));
        for (d, &l) in dst[i..i + 8].iter_mut().zip(&lanes) {
            *d = l as i8;
        }
        i += 8;
    }
    quantize_slice_scalar(&src[i..], scale, &mut dst[i..]);
}

/// `acc[j] += v[j] as f32 * s` — the attention value-mixing update. The
/// `d_head` accumulator lanes are independent, so vectorizing across `j`
/// preserves each lane's scalar operation order exactly (one multiply
/// rounding, one add rounding per element; no FMA contraction).
///
/// # Panics
///
/// Panics if `acc` and `v` lengths differ (debug builds).
#[inline]
pub fn accumulate_scaled_i8(acc: &mut [f32], v: &[i8], s: f32) {
    debug_assert_eq!(acc.len(), v.len(), "accumulate operand length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if acc.len() >= 8 && is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { accumulate_scaled_i8_avx2(acc, v, s) };
            return;
        }
    }
    accumulate_scaled_i8_scalar(acc, v, s);
}

/// Scalar reference accumulate loop (also the SIMD test oracle).
#[inline]
pub fn accumulate_scaled_i8_scalar(acc: &mut [f32], v: &[i8], s: f32) {
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += x as f32 * s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_scaled_i8_avx2(acc: &mut [f32], v: &[i8], s: f32) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_loadu_ps, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_storeu_ps, _mm_loadl_epi64,
    };
    let vs = _mm256_set1_ps(s);
    let n = acc.len().min(v.len());
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n keeps the 8-byte int8 load and the 32-byte
        // f32 load/store in bounds.
        let v8 = _mm_loadl_epi64(v.as_ptr().add(i) as *const _);
        let vf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v8));
        let a = _mm256_loadu_ps(acc.as_ptr().add(i));
        _mm256_storeu_ps(
            acc.as_mut_ptr().add(i),
            _mm256_add_ps(a, _mm256_mul_ps(vf, vs)),
        );
        i += 8;
    }
    accumulate_scaled_i8_scalar(&mut acc[i..], &v[i..], s);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: usize) -> (Vec<i8>, Vec<i8>) {
        (
            (0..len).map(|i| ((i * 37 + seed) % 255) as i8).collect(),
            (0..len)
                .map(|i| ((i * 91 + seed * 3) % 251) as i8)
                .collect(),
        )
    }

    #[test]
    fn dispatch_matches_scalar_at_every_length() {
        // Cover the vector body, the scalar tail, and sub-vector sizes.
        for len in 0..=67 {
            let (a, b) = vecs(len, len);
            assert_eq!(dot_i8_i32(&a, &b), dot_i8_i32_scalar(&a, &b), "len {len}");
        }
        for len in [128usize, 192, 1024, 1025, 4096] {
            let (a, b) = vecs(len, 7);
            assert_eq!(dot_i8_i32(&a, &b), dot_i8_i32_scalar(&a, &b), "len {len}");
        }
    }

    #[test]
    fn saturating_inputs_accumulate_exactly() {
        // ±127 everywhere: the largest magnitude the quantizer emits.
        let a = vec![127i8; 1000];
        let b = vec![-127i8; 1000];
        assert_eq!(dot_i8_i32(&a, &b), -127 * 127 * 1000);
        assert_eq!(dot_i8_i32(&a, &a), 127 * 127 * 1000);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_i8_i32(&[], &[]), 0);
    }

    fn f32s(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 13 + seed) as f32 * 0.177).sin() * (seed as f32 + 0.5))
            .collect()
    }

    #[test]
    fn absmax_matches_scalar_at_every_length() {
        for len in 0..=35 {
            let xs = f32s(len, len + 1);
            assert_eq!(absmax(&xs), absmax_scalar(&xs), "len {len}");
        }
        let big = f32s(1027, 3);
        assert_eq!(absmax(&big), absmax_scalar(&big));
    }

    #[test]
    fn absmax_ignores_nan_like_the_scalar_fold() {
        // `f32::max` skips NaN operands; the vectorized fold must too,
        // even when the NaN lands mid-lane after a peak was recorded.
        let mut xs = vec![0.5f32; 32];
        xs[2] = 1000.0;
        xs[10] = f32::NAN; // same lane as the peak, later iteration
        assert_eq!(absmax(&xs), absmax_scalar(&xs));
        assert_eq!(absmax(&xs), 1000.0);
    }

    #[test]
    fn absmax_sees_negative_peaks_and_tail() {
        let mut xs = vec![0.25f32; 64];
        xs[63] = -9.5; // last lane of the vector body
        assert_eq!(absmax(&xs), 9.5);
        let mut ys = vec![0.1f32; 65];
        ys[64] = -3.25; // scalar tail element
        assert_eq!(absmax(&ys), 3.25);
    }

    #[test]
    fn quantize_slice_matches_scalar_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 200] {
            let xs = f32s(len, len + 2);
            for scale in [0.01f32, 0.33, 1.0, 7.5] {
                let mut a = vec![0i8; len];
                let mut b = vec![0i8; len];
                quantize_slice(&xs, scale, &mut a);
                quantize_slice_scalar(&xs, scale, &mut b);
                assert_eq!(a, b, "len {len} scale {scale}");
            }
        }
    }

    #[test]
    fn quantize_slice_saturates_and_rounds_ties_even() {
        let xs = [1e9f32, -1e9, 0.5, 1.5, -0.5, -2.5, 0.0, 3.0, 4.4];
        let mut out = vec![0i8; xs.len()];
        quantize_slice(&xs, 1.0, &mut out);
        assert_eq!(out, vec![127, -127, 0, 2, 0, -2, 0, 3, 4]);
    }

    #[test]
    fn accumulate_scaled_matches_scalar_bitwise() {
        for len in [1usize, 7, 8, 9, 16, 64, 129] {
            let v = vecs(len, len).0;
            let mut a = f32s(len, 4);
            let mut b = a.clone();
            accumulate_scaled_i8(&mut a, &v, 0.0173);
            accumulate_scaled_i8_scalar(&mut b, &v, 0.0173);
            assert_eq!(a, b, "len {len}");
        }
    }
}
