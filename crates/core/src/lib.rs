//! # looplynx-core — the LoopLynx architecture
//!
//! The paper's primary contribution: a hybrid spatial–temporal dataflow
//! accelerator for LLM inference, scalable across multiple FPGAs through a
//! ring network.
//!
//! * [`config`] — architecture configuration ([`ArchConfig`]): ring size,
//!   HBM channel allocation, `n_group`, clock, FIFO depths, and the three
//!   optimization flags of Section III-C.
//! * [`datapack`] — the 32-byte datapack unit moved by DMA and routers.
//! * [`kernels`] — the macro dataflow kernels (fused MP, fused MHA, fused
//!   LN&Res, quantization unit, DMA engines), each with a cycle-accurate
//!   timing model and a functional compute path.
//! * [`scheduler`] — the state machine that *temporally reuses* the fused
//!   kernels across the stages of every transformer block (the hybrid in
//!   "hybrid spatial–temporal").
//! * [`router`] — the simplex ring router with node-id offsets.
//! * [`parallel`] — Megatron-style output-dimension weight sharding and
//!   head-wise KV partitioning.
//! * [`engine`] — the end-to-end engine ([`LoopLynx`]): timing simulation
//!   of full generations, energy accounting, and functionally-correct
//!   distributed inference.
//! * [`latency`] — latency breakdown buckets (paper Fig. 5).
//! * [`energy`] — per-token energy model.
//! * [`backend`] — the fallible serving contract
//!   ([`backend::InferenceBackend`], [`backend::BackendError`]) over the
//!   sim and functional substrates.
//! * [`fault`] — deterministic chaos: seeded [`fault::FaultPlan`]s applied
//!   by [`fault::FaultyBackend`] to any backend.
//!
//! # Example
//!
//! ```
//! use looplynx_core::{ArchConfig, LoopLynx};
//! use looplynx_model::ModelConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::builder().nodes(2).build()?;
//! let engine = LoopLynx::new(ModelConfig::gpt2_medium(), arch)?;
//! let report = engine.simulate_generation(32, 64);
//! println!("{:.2} ms/token", report.decode_ms_per_token());
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod backend;
pub mod config;
pub mod datapack;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod host;
pub mod kernels;
pub mod latency;
pub mod memory;
pub mod parallel;
pub mod pool;
pub mod router;
pub mod scheduler;

pub use config::{ArchConfig, ArchConfigBuilder, ConfigError, OptimizationFlags};
pub use engine::{GenerationReport, LoopLynx, TokenPhase};
pub use latency::LatencyBreakdown;
