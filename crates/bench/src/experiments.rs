//! The experiment implementations, one per paper artifact.

use serde::{Deserialize, Serialize};

use looplynx_baselines::gpu::A100Model;
use looplynx_baselines::report::FpgaBaselineReport;
use looplynx_baselines::spatial::SpatialArch;
use looplynx_baselines::temporal::TemporalArch;
use looplynx_core::config::{ArchConfig, OptimizationFlags};
use looplynx_core::engine::LoopLynx;
use looplynx_hw::device::FpgaDevice;
use looplynx_hw::floorplan::FloorPlan;
use looplynx_hw::platform::PlatformSpec;
use looplynx_hw::resources::{ComponentResources, NodeResourceModel};
use looplynx_model::config::ModelConfig;
use looplynx_serve::{serve_continuous, serve_sequential, ArrivalProcess, ServeConfig};
use looplynx_sim::stats::arithmetic_mean;

/// Decode context at which steady-state token latency is measured
/// (the long-generation regime of the paper's dominant `[·:512]`
/// settings).
pub const TABLE2_CONTEXT: usize = 512;

/// The `[prefill : decode]` grid of Fig. 8 (includes every setting the
/// paper names: `[32:512]`, `[64:512]`, `[128:512]`, `[128:32]`).
pub const FIG8_SETTINGS: [(usize, usize); 9] = [
    (32, 32),
    (32, 128),
    (32, 512),
    (64, 32),
    (64, 128),
    (64, 512),
    (128, 32),
    (128, 128),
    (128, 512),
];

fn engine(model: &ModelConfig, nodes: usize) -> LoopLynx {
    let arch = ArchConfig::builder()
        .nodes(nodes)
        .build()
        .expect("valid paper config");
    LoopLynx::new(model.clone(), arch).expect("model partitions over ring")
}

// ---------------------------------------------------------------- Table I

/// Table I: platform comparison rows.
pub fn table1() -> Vec<PlatformSpec> {
    PlatformSpec::table1()
}

/// Renders Table I.
pub fn render_table1() -> String {
    let mut out = String::from(
        "TABLE I — Comparison of GPU and FPGA platforms\n\
         Platform           Process  Frequency    Computing Units    Bandwidth      TDP\n",
    );
    for row in table1() {
        out.push_str(&format!("{row}\n"));
    }
    out
}

// ----------------------------------------------------------------- Fig. 5

/// One optimization level of the Fig. 5 ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Level {
    /// Level label as in the paper ("(a) baseline", …).
    pub label: String,
    /// Single-node decode token latency in ms at this level.
    pub token_ms: f64,
    /// Fraction of device time in linear + MHA.
    pub linear_mha_fraction: f64,
    /// Fraction of device time on the critical path.
    pub critical_path_fraction: f64,
    /// Latency reduction vs the unoptimized baseline.
    pub reduction_vs_baseline: f64,
}

/// Fig. 5: latency breakdown of one node and improvement per optimization.
pub fn fig5(model: &ModelConfig) -> Vec<Fig5Level> {
    let levels = [
        ("(a) baseline (no optimizations)", OptimizationFlags::NONE),
        (
            "(b) + fused LN&Res (critical path)",
            OptimizationFlags {
                fuse_ln_res: true,
                headwise_pipeline: false,
                hide_transmission: false,
            },
        ),
        (
            "(c) + head-wise pipelining",
            OptimizationFlags {
                fuse_ln_res: true,
                headwise_pipeline: true,
                hide_transmission: false,
            },
        ),
    ];
    let mut out = Vec::with_capacity(levels.len());
    let mut baseline_ms = None;
    for (label, opts) in levels {
        let arch = ArchConfig::builder()
            .nodes(1)
            .opts(opts)
            .build()
            .expect("valid config");
        let eng = LoopLynx::new(model.clone(), arch).expect("single node always partitions");
        let timing = eng.simulate_token(
            TABLE2_CONTEXT,
            looplynx_core::engine::TokenPhase::Decode,
            false,
        );
        let ms = timing.total_ms(eng.arch());
        let base = *baseline_ms.get_or_insert(ms);
        out.push(Fig5Level {
            label: label.to_owned(),
            token_ms: ms,
            linear_mha_fraction: timing.breakdown.linear_mha_fraction(),
            critical_path_fraction: timing.breakdown.critical_path_fraction(),
            reduction_vs_baseline: 1.0 - ms / base,
        });
    }
    out
}

/// Renders Fig. 5.
pub fn render_fig5(model: &ModelConfig) -> String {
    let mut out = String::from("FIG. 5 — Latency breakdown of 1-node and optimization gains\n");
    for level in fig5(model) {
        out.push_str(&format!(
            "{:<36} {:>6.2} ms | linear+MHA {:>5.1}% | critical path {:>5.1}% | -{:>4.1}% vs baseline\n",
            level.label,
            level.token_ms,
            level.linear_mha_fraction * 100.0,
            level.critical_path_fraction * 100.0,
            level.reduction_vs_baseline * 100.0,
        ));
    }
    out
}

// ----------------------------------------------------------------- Fig. 7

/// Fig. 7 data: component resources of the dual-node device + floorplan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Data {
    /// Component rows (device level, two nodes).
    pub components: Vec<ComponentResources>,
    /// ASCII layout of the dual-node U50.
    pub layout: String,
}

/// Fig. 7: resource breakdown and FPGA layout of the dual-node setting.
pub fn fig7() -> Fig7Data {
    let model = NodeResourceModel::paper();
    let plan = FloorPlan::place(&FpgaDevice::alveo_u50(), model.per_node(2), 2)
        .expect("paper layout fits");
    Fig7Data {
        components: model.component_breakdown(2),
        layout: plan.render(),
    }
}

/// Renders Fig. 7.
pub fn render_fig7() -> String {
    let data = fig7();
    let mut out = String::from(
        "FIG. 7 — Dual-node resource utilization on Alveo U50\n\
         Component                  DSP      LUT       FF     BRAM   URAM\n",
    );
    let mut total = looplynx_hw::resources::ResourceVector::ZERO;
    for c in &data.components {
        out.push_str(&format!(
            "{:<24} {:>6.0} {:>7.0}K {:>7.0}K {:>7.1} {:>6.0}\n",
            c.name,
            c.resources.dsp,
            c.resources.lut / 1e3,
            c.resources.ff / 1e3,
            c.resources.bram,
            c.resources.uram,
        ));
        total += c.resources;
    }
    out.push_str(&format!(
        "{:<24} {:>6.0} {:>7.0}K {:>7.0}K {:>7.1} {:>6.0}\n\n",
        "Device Total",
        total.dsp,
        total.lut / 1e3,
        total.ff / 1e3,
        total.bram,
        total.uram,
    ));
    out.push_str(&data.layout);
    out
}

// ---------------------------------------------------------------- Table II

/// Table II: all five FPGA rows (LoopLynx 4/2/1 nodes, DFX, spatial).
pub fn table2(model: &ModelConfig) -> Vec<FpgaBaselineReport> {
    let resources = NodeResourceModel::paper();
    let mut rows: Vec<FpgaBaselineReport> = [4usize, 2, 1]
        .into_iter()
        .map(|nodes| {
            let eng = engine(model, nodes);
            let devices = resources.devices_for(nodes);
            FpgaBaselineReport {
                name: "LoopLynx".into(),
                nodes_desc: format!("{nodes} Node(s) (U50 x{devices})"),
                freq_mhz: eng.arch().freq().as_mhz(),
                quantization: "W8A8".into(),
                token_latency_ms: eng.steady_state_decode_ms(TABLE2_CONTEXT),
                resources: resources.ring_total(nodes),
            }
        })
        .collect();
    rows.push(TemporalArch::dfx_u280().report(model));
    rows.push(SpatialArch::u280().report(model));
    rows
}

/// Renders Table II.
pub fn render_table2(model: &ModelConfig) -> String {
    let mut out = String::from(
        "TABLE II — Comparison of FPGA implementations (GPT-2 345M)\n\
         Architecture             Nodes              Freq     Quant   Latency  Resources\n",
    );
    for row in table2(model) {
        out.push_str(&format!("{row}\n"));
    }
    out
}

// --------------------------------------------------------------- Table III

/// One Table III row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Ring size.
    pub nodes: usize,
    /// Decode throughput in tokens/second.
    pub tokens_per_second: f64,
    /// Speedup vs the previous row (1-node row has none).
    pub speedup_vs_previous: Option<f64>,
}

/// Table III: throughput and scalability for 1/2/4 nodes.
pub fn table3(model: &ModelConfig) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for nodes in [1usize, 2, 4] {
        let tps = 1e3 / engine(model, nodes).steady_state_decode_ms(TABLE2_CONTEXT);
        rows.push(Table3Row {
            nodes,
            tokens_per_second: tps,
            speedup_vs_previous: prev.map(|p| tps / p),
        });
        prev = Some(tps);
    }
    rows
}

/// Renders Table III.
pub fn render_table3(model: &ModelConfig) -> String {
    let mut out = String::from("TABLE III — Throughput and scalability\n");
    for row in table3(model) {
        out.push_str(&format!(
            "{}-node: {:>6.1} token/s  {}\n",
            row.nodes,
            row.tokens_per_second,
            row.speedup_vs_previous
                .map_or("-".to_owned(), |s| format!("{s:.2}x")),
        ));
    }
    out
}

// ----------------------------------------------------------------- Fig. 8

/// One Fig. 8 grid cell: a `[prefill:decode]` setting under every system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Cell {
    /// Prompt length.
    pub prefill: usize,
    /// Generated tokens.
    pub decode: usize,
    /// Total latency in ms: LoopLynx 1/2/4 nodes then A100.
    pub latency_ms: [f64; 4],
    /// Generated tokens per joule, same order.
    pub tokens_per_joule: [f64; 4],
}

/// Fig. 8 aggregate results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Data {
    /// Per-setting cells.
    pub cells: Vec<Fig8Cell>,
    /// Mean speedup vs A100 for 1/2/4 nodes.
    pub mean_speedup: [f64; 3],
    /// Mean LoopLynx-energy / A100-energy for 1/2/4 nodes.
    pub mean_energy_fraction: [f64; 3],
    /// Mean normalized energy efficiency (tokens/J over A100 tokens/J).
    pub mean_energy_efficiency: [f64; 3],
}

/// Fig. 8: latency and energy efficiency vs the A100 across the full grid.
pub fn fig8(model: &ModelConfig) -> Fig8Data {
    fig8_with(model, &FIG8_SETTINGS)
}

/// Fig. 8 over a custom `[prefill:decode]` setting list (used by fast
/// tests; the paper grid is [`FIG8_SETTINGS`]).
///
/// # Panics
///
/// Panics if `settings` is empty.
pub fn fig8_with(model: &ModelConfig, settings: &[(usize, usize)]) -> Fig8Data {
    assert!(!settings.is_empty(), "need at least one setting");
    let engines: Vec<LoopLynx> = [1usize, 2, 4].iter().map(|&n| engine(model, n)).collect();
    let gpu = A100Model::paper_baseline();
    let mut cells = Vec::new();
    let mut speedups = [Vec::new(), Vec::new(), Vec::new()];
    let mut efracs = [Vec::new(), Vec::new(), Vec::new()];
    let mut effs = [Vec::new(), Vec::new(), Vec::new()];
    for &(prefill, decode) in settings {
        let g = gpu.generation(model, prefill, decode);
        let mut latency = [0.0f64; 4];
        let mut tpj = [0.0f64; 4];
        latency[3] = g.total_ms;
        tpj[3] = g.tokens_per_joule;
        for (i, eng) in engines.iter().enumerate() {
            let r = eng.simulate_generation(prefill, decode);
            latency[i] = r.total_ms();
            tpj[i] = r.energy.tokens_per_joule;
            speedups[i].push(g.total_ms / r.total_ms());
            efracs[i].push(r.energy.joules / g.energy_joules);
            effs[i].push(r.energy.tokens_per_joule / g.tokens_per_joule);
        }
        cells.push(Fig8Cell {
            prefill,
            decode,
            latency_ms: latency,
            tokens_per_joule: tpj,
        });
    }
    let mean3 = |v: &[Vec<f64>; 3]| -> [f64; 3] {
        [
            arithmetic_mean(&v[0]).expect("non-empty grid"),
            arithmetic_mean(&v[1]).expect("non-empty grid"),
            arithmetic_mean(&v[2]).expect("non-empty grid"),
        ]
    };
    Fig8Data {
        cells,
        mean_speedup: mean3(&speedups),
        mean_energy_fraction: mean3(&efracs),
        mean_energy_efficiency: mean3(&effs),
    }
}

/// Renders Fig. 8.
pub fn render_fig8(model: &ModelConfig) -> String {
    let data = fig8(model);
    let mut out = String::from(
        "FIG. 8 — LoopLynx vs Nvidia A100 across [prefill:decode] settings\n\
         (a) total latency, normalized to the 4-node implementation (higher = slower)\n\
         setting      1-node   2-node   4-node     A100\n",
    );
    for c in &data.cells {
        let norm = c.latency_ms[2];
        out.push_str(&format!(
            "[{:>3}:{:>3}]   {:>6.2}   {:>6.2}   {:>6.2}   {:>6.2}\n",
            c.prefill,
            c.decode,
            c.latency_ms[0] / norm,
            c.latency_ms[1] / norm,
            c.latency_ms[2] / norm,
            c.latency_ms[3] / norm,
        ));
    }
    out.push_str(
        "\n(b) energy efficiency (token/J), normalized to the A100 (higher = better)\n\
         setting      1-node   2-node   4-node     A100\n",
    );
    for c in &data.cells {
        let norm = c.tokens_per_joule[3];
        out.push_str(&format!(
            "[{:>3}:{:>3}]   {:>6.2}   {:>6.2}   {:>6.2}   {:>6.2}\n",
            c.prefill,
            c.decode,
            c.tokens_per_joule[0] / norm,
            c.tokens_per_joule[1] / norm,
            c.tokens_per_joule[2] / norm,
            1.0,
        ));
    }
    out.push_str(&format!(
        "\nAverages vs A100: speedup {:.2}x / {:.2}x / {:.2}x (1/2/4 nodes)\n\
         energy fraction {:.1}% / {:.1}% / {:.1}%, efficiency {:.1}x / {:.1}x / {:.1}x\n",
        data.mean_speedup[0],
        data.mean_speedup[1],
        data.mean_speedup[2],
        data.mean_energy_fraction[0] * 100.0,
        data.mean_energy_fraction[1] * 100.0,
        data.mean_energy_fraction[2] * 100.0,
        data.mean_energy_efficiency[0],
        data.mean_energy_efficiency[1],
        data.mean_energy_efficiency[2],
    ));
    out
}

// -------------------------------------------------- Offered-load sweep

/// Latency percentiles of one serving distribution: `[p50, p95, p99]` in
/// milliseconds.
pub type LatencyTail = [f64; 3];

/// One `(ring size, arrival rate)` cell of the offered-load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeSweepPoint {
    /// Ring size.
    pub nodes: usize,
    /// Offered load in requests per second.
    pub rate_per_s: f64,
    /// Sustained tokens/s under continuous batching.
    pub batched_tokens_per_s: f64,
    /// Sustained tokens/s serving one request at a time.
    pub sequential_tokens_per_s: f64,
    /// Mean decode-batch occupancy under continuous batching.
    pub mean_batch: f64,
    /// Time-to-first-token `[p50, p95, p99]` (ms, continuous batching).
    pub ttft_ms: LatencyTail,
    /// Time-per-output-token `[p50, p95, p99]` (ms, continuous batching).
    pub tpot_ms: LatencyTail,
    /// End-to-end latency `[p50, p95, p99]` (ms, continuous batching).
    pub e2e_ms: LatencyTail,
}

/// Workload shape of the sweep: a chat-style `[prefill : decode]` mix.
pub const SERVE_SHAPES: [(usize, usize); 3] = [(32, 32), (64, 16), (16, 48)];

/// Requests per sweep cell.
pub const SERVE_REQUESTS: usize = 32;

/// The default arrival-rate grid in requests per second.
pub const SERVE_RATES: [f64; 4] = [2.0, 5.0, 10.0, 20.0];

fn tail(p: &looplynx_sim::stats::Percentiles) -> LatencyTail {
    [
        p.p50().unwrap_or(0.0),
        p.p95().unwrap_or(0.0),
        p.p99().unwrap_or(0.0),
    ]
}

/// Offered-load sweep: serving throughput and latency percentiles vs
/// arrival rate, continuous batching against the sequential baseline, for
/// each ring size in `nodes_list`.
///
/// Workloads are deterministic per `(rate, seed)` so every ring size sees
/// the identical request stream at a given rate.
///
/// # Panics
///
/// Panics if `nodes_list` or `rates` is empty, or a ring size cannot
/// partition the model.
pub fn offered_load_sweep_with(
    model: &ModelConfig,
    nodes_list: &[usize],
    rates: &[f64],
    requests: usize,
    max_batch: usize,
) -> Vec<ServeSweepPoint> {
    assert!(
        !nodes_list.is_empty() && !rates.is_empty(),
        "sweep needs at least one ring size and one rate"
    );
    let cfg = ServeConfig::new(max_batch);
    let mut out = Vec::with_capacity(nodes_list.len() * rates.len());
    for &nodes in nodes_list {
        let eng = engine(model, nodes);
        for &rate in rates {
            let workload = ArrivalProcess::Poisson {
                rate_per_s: rate,
                seed: 0x10091,
            }
            .workload(requests, &SERVE_SHAPES);
            let batched = serve_continuous(&eng, &workload, &cfg);
            let serial = serve_sequential(&eng, &workload);
            out.push(ServeSweepPoint {
                nodes,
                rate_per_s: rate,
                batched_tokens_per_s: batched.tokens_per_second(),
                sequential_tokens_per_s: serial.tokens_per_second(),
                mean_batch: batched.batch_occupancy.mean(),
                ttft_ms: tail(&batched.ttft_ms),
                tpot_ms: tail(&batched.tpot_ms),
                e2e_ms: tail(&batched.e2e_ms),
            });
        }
    }
    out
}

/// The paper-configuration offered-load sweep: 1/2/4-node rings over
/// [`SERVE_RATES`] with [`SERVE_REQUESTS`] requests per cell.
pub fn offered_load_sweep(model: &ModelConfig) -> Vec<ServeSweepPoint> {
    offered_load_sweep_with(model, &[1, 2, 4], &SERVE_RATES, SERVE_REQUESTS, 8)
}

/// Renders the offered-load sweep.
pub fn render_offered_load_sweep(model: &ModelConfig) -> String {
    let mut out = format!(
        "OFFERED-LOAD SWEEP — continuous batching vs one-request-at-a-time\n\
         (Poisson arrivals, chat-style [prefill:decode] mix, {SERVE_REQUESTS} requests/cell)\n\
         nodes  req/s   batched   serial   gain  batch |   TTFT p50/p95/p99 (ms) |  TPOT p50 |    E2E p95\n",
    );
    for p in offered_load_sweep(model) {
        out.push_str(&format!(
            "{:>5} {:>6.1} {:>7.1} {:>8.1} {:>5.2}x {:>6.2} | {:>7.0} {:>6.0} {:>6.0} | {:>9.2} | {:>10.0}\n",
            p.nodes,
            p.rate_per_s,
            p.batched_tokens_per_s,
            p.sequential_tokens_per_s,
            p.batched_tokens_per_s / p.sequential_tokens_per_s.max(1e-12),
            p.mean_batch,
            p.ttft_ms[0],
            p.ttft_ms[1],
            p.ttft_ms[2],
            p.tpot_ms[0],
            p.e2e_ms[1],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn model() -> ModelConfig {
        ModelConfig::gpt2_medium()
    }

    #[test]
    fn table2_rows_match_paper_within_10pct() {
        let rows = table2(&model());
        assert_eq!(rows.len(), 5);
        // LoopLynx rows are 4/2/1 nodes in paper order
        let ll: Vec<f64> = rows[..3].iter().map(|r| r.token_latency_ms).collect();
        for (measured, paper_ms) in ll.iter().rev().zip(paper::TABLE2_LOOPLYNX_MS) {
            assert!(
                paper::deviation(*measured, paper_ms).abs() < 0.10,
                "{measured} vs paper {paper_ms}"
            );
        }
        assert!(paper::deviation(rows[3].token_latency_ms, paper::TABLE2_DFX_MS).abs() < 0.10);
        assert!(paper::deviation(rows[4].token_latency_ms, paper::TABLE2_SPATIAL_MS).abs() < 0.10);
    }

    #[test]
    fn table2_winner_ordering_holds() {
        let rows = table2(&model());
        let ll4 = rows[0].token_latency_ms;
        let ll2 = rows[1].token_latency_ms;
        let ll1 = rows[2].token_latency_ms;
        let dfx = rows[3].token_latency_ms;
        let spatial = rows[4].token_latency_ms;
        // paper: 4-node < 2-node < spatial < DFX < 1-node
        assert!(ll4 < ll2 && ll2 < spatial && spatial < dfx && dfx < ll1);
    }

    #[test]
    fn table3_speedups_match_paper() {
        let rows = table3(&model());
        let s21 = rows[1].speedup_vs_previous.unwrap();
        let s42 = rows[2].speedup_vs_previous.unwrap();
        assert!((s21 - paper::TABLE3_SPEEDUPS[0]).abs() < 0.15, "2v1 {s21}");
        assert!((s42 - paper::TABLE3_SPEEDUPS[1]).abs() < 0.15, "4v2 {s42}");
    }

    #[test]
    fn fig5_shape_matches_paper() {
        let levels = fig5(&model());
        assert_eq!(levels.len(), 3);
        // baseline split near 81.5 / 18.5
        assert!(
            (levels[0].linear_mha_fraction - paper::FIG5_LINEAR_MHA_FRACTION).abs() < 0.07,
            "baseline split {}",
            levels[0].linear_mha_fraction
        );
        // each optimization helps, cumulatively
        assert!(levels[1].reduction_vs_baseline > 0.04);
        assert!(levels[2].reduction_vs_baseline > levels[1].reduction_vs_baseline);
        // cumulative reduction in the paper's ballpark (15 %)
        assert!(
            (levels[2].reduction_vs_baseline - paper::FIG5_CUMULATIVE_REDUCTION).abs() < 0.08,
            "cumulative {}",
            levels[2].reduction_vs_baseline
        );
    }

    #[test]
    fn fig7_components_and_layout() {
        let data = fig7();
        assert!(data.components.iter().any(|c| c.name.contains("MP")));
        assert!(data.layout.contains("SLR1"));
        assert!(render_fig7().contains("Device Total"));
    }

    #[test]
    fn table1_renders_three_platforms() {
        let s = render_table1();
        assert!(s.contains("A100") && s.contains("U280") && s.contains("U50"));
    }

    #[test]
    fn offered_load_sweep_favors_continuous_batching() {
        // A fast single-rate slice of the sweep: at an over-subscribed
        // arrival rate, continuous batching must sustain strictly more
        // tokens/s than serve-one-at-a-time on every ring size, and the
        // latency tails must be populated and ordered.
        let points = offered_load_sweep_with(&model(), &[1, 2], &[20.0], 12, 8);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.batched_tokens_per_s > p.sequential_tokens_per_s,
                "{} nodes: batched {} vs sequential {}",
                p.nodes,
                p.batched_tokens_per_s,
                p.sequential_tokens_per_s
            );
            assert!(p.mean_batch > 1.0, "no batching happened");
            for tail in [p.ttft_ms, p.tpot_ms, p.e2e_ms] {
                assert!(tail[0] > 0.0);
                assert!(tail[0] <= tail[1] && tail[1] <= tail[2], "tail unordered");
            }
        }
    }

    #[test]
    fn sweep_scales_with_ring_size() {
        // More nodes decode faster, so the saturated serving throughput
        // must grow with the ring.
        let points = offered_load_sweep_with(&model(), &[1, 4], &[20.0], 12, 8);
        assert!(points[1].batched_tokens_per_s > points[0].batched_tokens_per_s);
    }
}
