//! Distributed functional inference: runs the same prompt through 1-, 2-
//! and 4-node partitioned W8A8 pipelines and verifies the model-parallel
//! algebra (paper Fig. 2(c)) — head-aligned QKV shards, node-local
//! attention over head-sliced KV caches, ring all-gathers between sharded
//! linears.
//!
//! ```text
//! cargo run --example distributed_inference
//! ```

use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::tokenizer::ByteTokenizer;
use looplynx::model::{Autoregressive, ModelConfig, Sampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ModelConfig::tiny();
    let reference = Gpt2Model::synthetic(&cfg, 2024);
    let tok = ByteTokenizer::new();
    let prompt = tok.encode("the quick brown fox");
    let n = 16;

    let mut single = reference.clone();
    let expected = single.generate(&prompt, n, &mut Sampler::greedy());
    println!("reference (single node): {:?}", tok.decode(&expected));

    println!("\nexact ring payloads (f32 sub-vectors):");
    for nodes in [1usize, 2, 4] {
        let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Exact)?;
        let got = dist.generate(&prompt, n, &mut Sampler::greedy());
        let status = if got == expected {
            "bit-identical ✓"
        } else {
            "MISMATCH ✗"
        };
        println!(
            "  {nodes}-node: {status}   per-node KV bytes after run: {}",
            dist.node_kv_bytes(0)
        );
        assert_eq!(got, expected);
    }

    println!("\nquantized ring payloads (int8 datapacks, per-shard scales):");
    for nodes in [2usize, 4] {
        let mut dist = DistributedGpt2::new(&reference, nodes, RingMode::Quantized)?;
        let got = dist.generate(&prompt, n, &mut Sampler::greedy());
        let agree = got
            .iter()
            .zip(&expected)
            .take_while(|(a, b)| a == b)
            .count();
        println!(
            "  {nodes}-node: first {agree}/{n} tokens agree with the reference \
             (int8 ring payloads perturb logits slightly)"
        );
        assert!(agree >= 1, "int8 gather should not diverge immediately");
    }

    println!(
        "\nhead-wise KV partitioning: a node in an N-node ring stores 1/N of\n\
         the cache — the paper's 'minimize the memory footprint' claim."
    );
    Ok(())
}
