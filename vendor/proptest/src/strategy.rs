//! The [`Strategy`] trait and its combinators / primitive impls.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::{CaseError, CaseResult, TestRng};

/// A generator of values of type `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy` closely enough for this
/// workspace: ranges, tuples of strategies, `prop_map`, `prop_filter`,
/// [`Just`], plus the module-level constructors in
/// [`collection`](crate::collection) and [`sample`](crate::sample).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value. `Err(Reject)` asks the runner to resample.
    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`.
    ///
    /// `whence` labels the filter in reject-storm diagnostics.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_one(&self, _rng: &mut TestRng) -> CaseResult<T> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<O> {
        Ok((self.f)(self.inner.sample_one(rng)?))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<S::Value> {
        // A handful of local retries keeps easy filters from surfacing
        // as runner-level rejects.
        for _ in 0..16 {
            let v = self.inner.sample_one(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(CaseError::reject(self.whence.clone()))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> CaseResult<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> CaseResult<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 only for the full u64/i64 domain; fall back
                // to raw bits there.
                if span == 0 {
                    return Ok(rng.next_u64() as $t);
                }
                Ok((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> CaseResult<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // `u` can round to 1.0 in the target type (unit_f64()
                // returns values within 2^-53 of 1.0, and the f32 cast
                // rounds harder); keep the half-open contract.
                Ok(if v < self.end { v } else { self.start })
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> CaseResult<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                Ok(lo + u * (hi - lo))
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `&str` patterns act as string-generation strategies, mirroring the
/// real crate's regex-based `StrategyFromRegex`. Only the subset used in
/// this workspace is interpreted: a single body — `\PC` (any
/// non-control char), `.` (any ASCII printable), or a `[a-z0-9]`-style
/// class — followed by an optional `{m,n}` / `*` / `+` quantifier.
/// Anything else is generated literally, repeated per the quantifier.
impl Strategy for &str {
    type Value = String;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<String> {
        let (body, lo, hi) = split_quantifier(self);
        let n = (lo + (rng.below((hi - lo + 1) as u64) as usize)).min(hi);
        let mut out = String::new();
        for _ in 0..n {
            push_one(body, rng, &mut out);
        }
        Ok(out)
    }
}

/// Splits a trailing `{m,n}`, `{m,}`, `{n}`, `*`, or `+` quantifier off
/// `pat`, returning `(body, min_reps, max_reps)`.
fn split_quantifier(pat: &str) -> (&str, usize, usize) {
    if let Some(body) = pat.strip_suffix('*') {
        return (body, 0, 16);
    }
    if let Some(body) = pat.strip_suffix('+') {
        return (body, 1, 16);
    }
    if pat.ends_with('}') {
        if let Some(open) = pat.rfind('{') {
            let inner = &pat[open + 1..pat.len() - 1];
            let (lo_s, hi_s) = match inner.split_once(',') {
                Some((lo, hi)) => (lo, hi),
                None => (inner, inner),
            };
            if let Ok(lo) = lo_s.trim().parse::<usize>() {
                // Open-ended `{m,}` caps at m+16, like `*`/`+`.
                let hi = if hi_s.trim().is_empty() {
                    Ok(lo + 16)
                } else {
                    hi_s.trim().parse()
                };
                if let Ok(hi) = hi {
                    return (&pat[..open], lo, hi);
                }
            }
        }
    }
    (pat, 1, 1)
}

/// Appends one unit matching `body` to `out`.
fn push_one(body: &str, rng: &mut TestRng, out: &mut String) {
    match body {
        // `\PC` / `\p{Any}`-ish: any non-control character. Bias toward
        // ASCII but include multi-byte code points so UTF-8 handling is
        // actually exercised.
        "\\PC" | "\\p{Any}" => {
            let c = loop {
                let c = if rng.below(4) == 0 {
                    // Non-ASCII: sample the BMP and beyond, skipping
                    // surrogates (char::from_u32 rejects them).
                    match char::from_u32(0x80 + rng.below(0x2_0000 - 0x80) as u32) {
                        Some(c) => c,
                        None => continue,
                    }
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                };
                if !c.is_control() {
                    break c;
                }
            };
            out.push(c);
        }
        "." => out.push((0x20 + rng.below(0x5f) as u8) as char),
        _ if body.starts_with('[') && body.ends_with(']') => {
            let choices = class_chars(&body[1..body.len() - 1]);
            if !choices.is_empty() {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        _ => out.push_str(body),
    }
}

/// Expands a character-class body like `a-z0-9_` into its members.
fn class_chars(inner: &str) -> Vec<char> {
    let cs: Vec<char> = inner.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for u in cs[i] as u32..=cs[i + 2] as u32 {
                out.extend(char::from_u32(u));
            }
            i += 3;
        } else {
            out.push(cs[i]);
            i += 1;
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_one(&self, rng: &mut TestRng) -> CaseResult<Self::Value> {
                Ok(($(self.$idx.sample_one(rng)?,)+))
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn int_range_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..17).sample_one(&mut r).unwrap();
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0u32..=2).sample_one(&mut r).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (-2.0f32..3.0).sample_one(&mut r).unwrap();
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut r = rng();
        let s = (0i32..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x != 0);
        for _ in 0..100 {
            let v = s.sample_one(&mut r).unwrap();
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut r = rng();
        let (a, b, c) = (1u64..4, 0f64..1.0, 5i8..6).sample_one(&mut r).unwrap();
        assert!((1..4).contains(&a));
        assert!((0.0..1.0).contains(&b));
        assert_eq!(c, 5);
    }

    #[test]
    fn just_yields_value() {
        assert_eq!(Just(7).sample_one(&mut rng()).unwrap(), 7);
    }
}
