//! Integration tests for the reproduction's extensions: batched prefill,
//! the host/PCIe overhead model, and HBM capacity budgeting.

use looplynx::core::host::HostModel;
use looplynx::core::memory::hbm_budget;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::eval::evaluate;
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::ModelConfig;

#[test]
fn batched_prefill_monotone_in_batch() {
    let model = ModelConfig::gpt2_medium();
    let mut last = f64::INFINITY;
    for batch in [1usize, 2, 4, 8, 16] {
        let arch = ArchConfig::builder()
            .nodes(2)
            .prefill_batch(batch)
            .build()
            .expect("valid");
        let engine = LoopLynx::new(model.clone(), arch).expect("partitions");
        let prefill_ms = engine.simulate_generation(64, 2).prefill_ms;
        assert!(
            prefill_ms <= last + 1e-9,
            "batch {batch} regressed: {prefill_ms} vs {last}"
        );
        last = prefill_ms;
    }
}

#[test]
fn batched_prefill_beats_a100_at_prefill_heavy_setting() {
    // The extension's headline: with batch 16 the [128:32] loss flips.
    let model = ModelConfig::gpt2_medium();
    let gpu = looplynx::baselines::gpu::A100Model::paper_baseline().generation(&model, 128, 32);
    let arch = ArchConfig::builder()
        .nodes(2)
        .prefill_batch(16)
        .build()
        .expect("valid");
    let fpga = LoopLynx::new(model, arch)
        .expect("partitions")
        .simulate_generation(128, 32);
    assert!(
        fpga.total_ms() < gpu.total_ms,
        "batched FPGA {} vs A100 {}",
        fpga.total_ms(),
        gpu.total_ms
    );
}

#[test]
fn functional_batched_prefill_equals_sequential_everywhere() {
    let cfg = ModelConfig::tiny();
    for seed in [3u64, 17, 99] {
        let mut seq = Gpt2Model::synthetic(&cfg, seed);
        let mut bat = Gpt2Model::synthetic(&cfg, seed);
        let prompt: Vec<u32> = (0..10)
            .map(|i| (i * 29 + seed as usize) as u32 % 256)
            .collect();
        assert_eq!(
            seq.prefill(&prompt),
            bat.prefill_batched(&prompt),
            "seed {seed}"
        );
    }
}

#[test]
fn host_overhead_grows_with_vocab_and_dominates_for_decode() {
    let h = HostModel::paper();
    let tiny = h.token_overhead_us(&ModelConfig::tiny(), true);
    let medium = h.token_overhead_us(&ModelConfig::gpt2_medium(), true);
    assert!(medium > tiny, "logit upload should scale with vocab");
    let no_logits = h.token_overhead_us(&ModelConfig::gpt2_medium(), false);
    assert!(medium > 3.0 * no_logits);
}

#[test]
fn hbm_budget_fits_paper_configurations() {
    for nodes in [1usize, 2, 4] {
        let arch = ArchConfig::builder().nodes(nodes).build().expect("valid");
        let b = hbm_budget(&arch, &ModelConfig::gpt2_medium(), 1024);
        assert!(b.fits(), "{nodes}-node budget: {b}");
    }
}

#[test]
fn hbm_budget_catches_oversized_deployments() {
    // A hypothetical 100-layer, d=4096 model on a single node would carry
    // ~13 GB of int8 weights — more than the U50's 8 GB.
    let huge = ModelConfig {
        name: "huge".into(),
        layers: 100,
        d_model: 4096,
        heads: 32,
        d_ff: 16384,
        vocab: 50257,
        max_seq: 1024,
    };
    let arch = ArchConfig::builder().nodes(1).build().expect("valid");
    let b = hbm_budget(&arch, &huge, 1024);
    assert!(!b.fits(), "a 13 GB model cannot fit 8 GB of HBM: {b}");
    // ... but sharding across 8 nodes brings it under budget
    let arch8 = ArchConfig::builder().nodes(8).build().expect("valid");
    assert!(hbm_budget(&arch8, &huge, 1024).fits());
}

#[test]
fn perplexity_api_round_trips_through_facade() {
    let cfg = ModelConfig::tiny();
    let mut m = Gpt2Model::synthetic(&cfg, 123);
    let tokens: Vec<u32> = (0..20).map(|i| (i * 7 % 256) as u32).collect();
    let ppl = evaluate(&mut m, &tokens);
    assert_eq!(ppl.tokens(), 19);
    assert!(ppl.perplexity() > 1.0);
    assert!(ppl.cross_entropy() > 0.0);
}
