//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use looplynx_sim::des_pipeline::des_makespan;
use looplynx_sim::fifo::BoundedFifo;
use looplynx_sim::hbm::HbmChannel;
use looplynx_sim::net::{RingSim, RingSpec};
use looplynx_sim::pipeline::{PipelineSpec, StageSpec};
use looplynx_sim::time::{Cycles, Frequency};

fn arb_stages() -> impl Strategy<Value = Vec<StageSpec>> {
    prop::collection::vec(
        (1u64..64, 1u64..64, 1usize..16)
            .prop_map(|(lat, ii, cap)| StageSpec::new("s", lat, ii).with_out_capacity(cap)),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline makespan never beats its two lower bounds: the fill
    /// latency and the bottleneck initiation interval times the items.
    #[test]
    fn pipeline_respects_lower_bounds(stages in arb_stages(), n in 1usize..64) {
        let spec = PipelineSpec::new(stages);
        let run = spec.evaluate_uniform(n);
        let fill = spec.fill_latency().as_u64();
        let bottleneck = spec.bottleneck_ii() * (n as u64 - 1);
        prop_assert!(run.makespan().as_u64() >= fill);
        prop_assert!(run.makespan().as_u64() >= bottleneck);
        prop_assert!(run.first_out().as_u64() >= fill);
    }

    /// The closed-form calculator and the discrete-event simulation are
    /// two independent implementations of the pipeline semantics — they
    /// must agree exactly on arbitrary pipelines. This is the core
    /// correctness argument for the kernel timing models.
    #[test]
    fn calculator_matches_discrete_event_simulation(
        stages in arb_stages(),
        n in 1usize..40,
    ) {
        let spec = PipelineSpec::new(stages);
        prop_assert_eq!(des_makespan(&spec, n), spec.evaluate_uniform(n).makespan());
    }

    /// Adding items never shortens a pipeline's makespan.
    #[test]
    fn pipeline_monotone_in_items(stages in arb_stages(), n in 1usize..48) {
        let spec = PipelineSpec::new(stages);
        let a = spec.evaluate_uniform(n).makespan();
        let b = spec.evaluate_uniform(n + 1).makespan();
        prop_assert!(b >= a);
    }

    /// Widening any FIFO never slows the pipeline down (backpressure can
    /// only delay, never accelerate).
    #[test]
    fn wider_fifos_never_hurt(stages in arb_stages(), n in 1usize..48) {
        let wide: Vec<StageSpec> = stages
            .iter()
            .map(|s| StageSpec::new(s.name.clone(), s.latency, s.ii).with_out_capacity(
                s.out_capacity.saturating_mul(2).max(s.out_capacity),
            ))
            .collect();
        let narrow_t = PipelineSpec::new(stages).evaluate_uniform(n).makespan();
        let wide_t = PipelineSpec::new(wide).evaluate_uniform(n).makespan();
        prop_assert!(wide_t <= narrow_t);
    }

    /// Delaying arrivals never finishes the pipeline earlier.
    #[test]
    fn pipeline_monotone_in_arrivals(
        stages in arb_stages(),
        base in prop::collection::vec(0u64..100, 1..32),
        shift in 0u64..50,
    ) {
        let mut sorted = base;
        sorted.sort_unstable();
        let arrivals: Vec<Cycles> = sorted.iter().map(|&c| Cycles::new(c)).collect();
        let shifted: Vec<Cycles> = sorted.iter().map(|&c| Cycles::new(c + shift)).collect();
        let spec = PipelineSpec::new(stages);
        let a = spec.evaluate(&arrivals).makespan();
        let b = spec.evaluate(&shifted).makespan();
        prop_assert!(b >= a);
    }

    /// HBM transfers are monotone in bytes and never beat peak bandwidth.
    #[test]
    fn hbm_transfer_bounded_by_peak(bytes in 1usize..1_000_000, burst_log in 5u32..13) {
        let ch = HbmChannel::paper_channel(Frequency::from_mhz(285.0));
        let burst = 1usize << burst_log;
        let cycles = ch.transfer_cycles(bytes, burst).as_f64();
        let ideal = bytes as f64 / ch.peak_bytes_per_cycle();
        prop_assert!(cycles >= ideal.floor(), "beat peak: {cycles} vs {ideal}");
        let more = ch.transfer_cycles(bytes + 1024, burst);
        prop_assert!(more.as_f64() >= cycles);
    }

    /// Burst efficiency is monotone in burst length.
    #[test]
    fn burst_efficiency_monotone(a_log in 5u32..12, b_log in 5u32..12) {
        let ch = HbmChannel::paper_channel(Frequency::from_mhz(285.0));
        let (small, large) = (1usize << a_log.min(b_log), 1usize << a_log.max(b_log));
        prop_assert!(ch.burst_efficiency(large) >= ch.burst_efficiency(small) - 1e-9);
    }

    /// A bounded FIFO delivers exactly what it accepted, in order.
    #[test]
    fn fifo_preserves_order(cap in 1usize..64, items in prop::collection::vec(any::<u32>(), 0..128)) {
        let mut fifo = BoundedFifo::new(cap);
        let mut accepted = Vec::new();
        for &item in &items {
            if fifo.try_push(item).is_ok() {
                accepted.push(item);
            }
        }
        prop_assert!(accepted.len() <= cap);
        prop_assert_eq!(fifo.drain_all(), accepted);
    }

    /// Ring all-gather timing is linear in (nodes − 1) for fixed shards.
    #[test]
    fn ring_linear_in_hops(shard in 1usize..100_000) {
        let clock = Frequency::from_mhz(285.0);
        let t2 = RingSpec::paper_ring(2, clock).all_gather_cycles(shard).as_u64();
        let t5 = RingSpec::paper_ring(5, clock).all_gather_cycles(shard).as_u64();
        prop_assert_eq!(t5, t2 * 4);
    }

    /// The router DES reproduces every shard at the right offset for
    /// arbitrary payloads.
    #[test]
    fn ring_des_places_shards_by_origin(
        nodes in 2usize..6,
        shard in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let shards: Vec<Vec<u8>> = (0..nodes)
            .map(|i| shard.iter().map(|&b| b.wrapping_add(i as u8)).collect())
            .collect();
        let spec = RingSpec::paper_ring(nodes, Frequency::from_mhz(285.0));
        let outcome = RingSim::new(spec).all_gather(&shards);
        prop_assert!(outcome.buffers_consistent());
        for (i, s) in shards.iter().enumerate() {
            let off = i * s.len();
            prop_assert_eq!(&outcome.buffers[0][off..off + s.len()], &s[..]);
        }
    }
}
