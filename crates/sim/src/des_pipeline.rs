//! Discrete-event execution of a [`PipelineSpec`] — an *independent*
//! implementation of the pipeline semantics used to cross-validate the
//! closed-form calculator.
//!
//! The calculator in [`crate::pipeline`] evaluates the classic start-time
//! recurrences; this module instead simulates the same pipeline with
//! event-driven stage processes and credit-based flow control (a credit is
//! consumed when a stage *starts* an item — reserving a slot in its output
//! FIFO — and returned when the downstream stage starts that item, exactly
//! the `start[s][i] ≥ start[s+1][i−capacity]` rule). The property tests
//! assert both implementations produce identical makespans for arbitrary
//! pipelines, which is the strongest internal evidence that the kernel
//! timing models are simulating what they claim to.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::{Context, Engine, Process, ProcessId};
use crate::pipeline::PipelineSpec;
use crate::time::Cycles;

/// Messages exchanged between stage processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Msg {
    /// An item (by index) arriving at a stage's input queue.
    Item(usize),
    /// A downstream stage started an item: one output-FIFO slot freed.
    Credit,
    /// Self-scheduled wake-up to retry issuing.
    Poll,
}

/// One pipeline stage as a DES process.
struct StageProc {
    latency: u64,
    ii: u64,
    me: ProcessId,
    next: Option<ProcessId>,
    /// Items waiting at the input, FIFO order.
    queue: std::collections::VecDeque<usize>,
    /// Output-FIFO slots available (usize::MAX = unbounded).
    credits: usize,
    /// Time of the most recent issue, if any.
    last_start: Option<Cycles>,
    /// Completion times of items leaving the *last* stage.
    sink: Option<Rc<RefCell<Vec<Cycles>>>>,
}

impl StageProc {
    fn can_start(&self, now: Cycles) -> bool {
        if self.queue.is_empty() || self.credits == 0 {
            return false;
        }
        match self.last_start {
            None => true,
            Some(t) => now.as_u64() >= t.as_u64() + self.ii,
        }
    }

    /// Issues the next item if all gates are open; returns whether an
    /// item was started. Schedules a poll when only the II gate is closed.
    fn try_start(&mut self, now: Cycles, ctx: &mut Context<Msg>) -> bool {
        let started = if self.can_start(now) {
            let item = self.queue.pop_front().expect("checked non-empty");
            self.last_start = Some(now);
            if self.credits != usize::MAX {
                self.credits -= 1;
            }
            match self.next {
                Some(next) => {
                    // item arrives downstream when it finishes here; the
                    // downstream start will return our credit
                    ctx.send_after(Cycles::new(self.latency), next, Msg::Item(item));
                }
                None => {
                    let done = now + Cycles::new(self.latency);
                    self.sink
                        .as_ref()
                        .expect("last stage has a sink")
                        .borrow_mut()
                        .push(done);
                }
            }
            true
        } else {
            false
        };
        // if an item is waiting but the II gate is closed, poll again when
        // it opens
        if !self.queue.is_empty() && self.credits > 0 {
            if let Some(t) = self.last_start {
                let ready = t + Cycles::new(self.ii);
                if ready > now {
                    ctx.send_after(ready - now, self.me, Msg::Poll);
                }
            }
        }
        started
    }
}

/// Wrapper wiring a stage to its predecessor for credit returns.
struct WiredStage {
    inner: StageProc,
    prev: Option<ProcessId>,
}

impl Process<Msg> for WiredStage {
    fn on_message(&mut self, now: Cycles, msg: Msg, ctx: &mut Context<Msg>) {
        if let Msg::Item(i) = msg {
            self.inner.queue.push_back(i);
        }
        if let Msg::Credit = msg {
            if self.inner.credits != usize::MAX {
                self.inner.credits += 1;
            }
        }
        // every start frees one slot of the upstream FIFO
        if self.inner.try_start(now, ctx) {
            if let Some(prev) = self.prev {
                ctx.send_now(prev, Msg::Credit);
            }
        }
    }
}

/// Executes `spec` over `n` items (all arriving at cycle 0) with the
/// discrete-event engine; returns the makespan.
///
/// # Panics
///
/// Panics if the simulation livelocks (defensive bound).
pub fn des_makespan(spec: &PipelineSpec, n: usize) -> Cycles {
    if n == 0 {
        return Cycles::ZERO;
    }
    let sink: Rc<RefCell<Vec<Cycles>>> = Rc::new(RefCell::new(Vec::new()));
    let mut engine: Engine<Msg> = Engine::new();
    let count = spec.stages().len();
    for (s, stage) in spec.stages().iter().enumerate() {
        let last = s + 1 == count;
        engine.add_process(WiredStage {
            inner: StageProc {
                latency: stage.latency,
                ii: stage.ii,
                me: s,
                next: (!last).then_some(s + 1),
                queue: std::collections::VecDeque::new(),
                credits: if last { usize::MAX } else { stage.out_capacity },
                last_start: None,
                sink: last.then(|| Rc::clone(&sink)),
            },
            prev: (s > 0).then(|| s - 1),
        });
    }
    for i in 0..n {
        engine.post(Cycles::ZERO, 0, Msg::Item(i));
    }
    engine
        .run_bounded(10_000_000)
        .expect("pipeline DES livelocked");
    let done = sink.borrow();
    assert_eq!(done.len(), n, "not every item drained");
    done.iter().copied().fold(Cycles::ZERO, Cycles::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StageSpec;

    fn spec(stages: &[(u64, u64, usize)]) -> PipelineSpec {
        PipelineSpec::new(
            stages
                .iter()
                .map(|&(l, ii, cap)| StageSpec::new("s", l, ii).with_out_capacity(cap))
                .collect(),
        )
    }

    #[test]
    fn single_stage_matches_calculator() {
        let p = spec(&[(5, 3, 4)]);
        for n in [1usize, 2, 7, 20] {
            assert_eq!(
                des_makespan(&p, n),
                p.evaluate_uniform(n).makespan(),
                "n={n}"
            );
        }
    }

    #[test]
    fn two_stage_pipeline_matches_calculator() {
        let p = spec(&[(2, 2, 8), (3, 3, 8)]);
        for n in [1usize, 3, 10] {
            assert_eq!(des_makespan(&p, n), p.evaluate_uniform(n).makespan());
        }
    }

    #[test]
    fn bottleneck_pipeline_matches_calculator() {
        let p = spec(&[(1, 1, 16), (10, 10, 16), (1, 1, 16)]);
        assert_eq!(des_makespan(&p, 25), p.evaluate_uniform(25).makespan());
    }

    #[test]
    fn tight_fifo_backpressure_matches_calculator() {
        // fast producer, 1-deep FIFO, slow consumer: heavy backpressure
        let p = spec(&[(1, 1, 1), (9, 9, 1), (4, 4, 1)]);
        for n in [1usize, 2, 5, 12] {
            assert_eq!(
                des_makespan(&p, n),
                p.evaluate_uniform(n).makespan(),
                "n={n}"
            );
        }
    }

    #[test]
    fn mp_kernel_shape_matches_calculator() {
        // the fused MP kernel's stage shape (dma/mac/pack/quant/send)
        let p = spec(&[
            (1163, 1163, 64),
            (1032, 1024, 64),
            (4, 1, 64),
            (24, 1, 64),
            (12, 12, 64),
        ]);
        assert_eq!(des_makespan(&p, 12), p.evaluate_uniform(12).makespan());
    }

    #[test]
    fn zero_items_is_free() {
        let p = spec(&[(1, 1, 1)]);
        assert_eq!(des_makespan(&p, 0), Cycles::ZERO);
    }
}
