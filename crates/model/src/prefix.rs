//! Content-addressed prefix index for the paged KV arena.
//!
//! Multi-turn chat re-prefills the same token prefixes on every request.
//! This module gives those prefixes an *identity* so the engine can find
//! already-computed KV pages and share them instead of recomputing: a
//! page's identity is the hash of its token span chained with its
//! predecessor's identity, so two sequences agree on page `i` exactly
//! when they agree on every token up to and including that page.
//!
//! The index is pure bookkeeping — it never touches the arena. The engine
//! owns the pairing: it pins registered pages with
//! [`crate::paged::PagedKvArena::retain_page`] (one pin per entry), maps
//! hits with [`crate::paged::PagedKvArena::map_shared`], and drops pins
//! for pages returned by [`PrefixIndex::evict_lru`].
//!
//! # Hash chain
//!
//! Identities are a seeded FNV-1a fold ([`chain_hash`]): the predecessor
//! hash (the fixed [`PREFIX_SEED`] at the root) is folded with the span
//! length and then each token's little-endian bytes. Folding the length
//! first keeps the chain *prefix-free*: without it, `hash(h, [a, b])`
//! and `hash(hash(h, [a]), [b])` would collapse to the same fold and a
//! partial boundary entry could alias a deeper full-page entry. The
//! chain is fully deterministic — no `DefaultHasher`, no per-process
//! seeding — so every node of a lock-stepped engine computes identical
//! identities (the `determinism` lint rule covers this module).
//!
//! Hashing is an accelerator only: [`PrefixIndex::lookup`] verifies the
//! stored token span byte-for-byte before reporting a hit, so a 64-bit
//! collision costs a cache miss, never a wrong answer.
//!
//! # Entry lifecycle
//!
//! Entries are registered from a slot's finished pages: every *full*
//! page once its span can no longer change, plus (at release time) the
//! final partially-filled page as a chain *terminator*. Each new entry
//! pins its page (the caller holds one arena refcount on its behalf);
//! duplicate registrations refresh recency instead of re-pinning.
//! Eviction picks the least-recently-hit entry whose page is held by
//! nothing but the cache pin (arena refcount 1) and cascades over its
//! descendants, keeping every stored chain contiguous from the root —
//! a lookup can therefore walk pages greedily and stop at the first gap.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Root of every hash chain: the FNV-1a 64-bit offset basis.
pub const PREFIX_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extend a chain identity `prev` with the token span of one page.
///
/// Deterministic seeded FNV-1a: folds the span length, then each
/// token's little-endian bytes. `chain_hash(PREFIX_SEED, span)` is the
/// identity of a first page; deeper pages chain on their predecessor.
#[must_use]
pub fn chain_hash(prev: u64, tokens: &[u32]) -> u64 {
    let mut h = prev;
    for byte in (tokens.len() as u64).to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    for t in tokens {
        for byte in t.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// One cached page span: the chain link stored under its identity hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    /// Exact token span of the page — verified on every lookup.
    tokens: Vec<u32>,
    /// Arena page holding the span's KV rows (pinned by the cache).
    page: usize,
    /// Predecessor identity ([`PREFIX_SEED`] for a first page).
    prev: u64,
    /// Logical recency tick of the last lookup hit (or registration).
    last_hit: u64,
}

/// A resolved prefix hit: pages to map and how many tokens they cover.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMatch {
    /// Cached arena pages covering the matched prefix, in order.
    pub pages: Vec<usize>,
    /// Matched token count; always `< prompt.len()` so at least one
    /// novel token remains to prefill (the model must produce logits).
    pub tokens: usize,
}

/// Counters describing index traffic, for engine-level stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixIndexStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that matched at least one page.
    pub hits: u64,
    /// Tokens whose prefill was skipped thanks to matched pages.
    pub reused_tokens: u64,
    /// Entries created by [`PrefixIndex::register`].
    pub inserted: u64,
    /// Registration links skipped because an identical span was cached.
    pub deduped: u64,
    /// Entries removed by [`PrefixIndex::evict_lru`] (incl. cascades).
    pub evicted: u64,
}

/// Content-addressed registry of cached KV page spans.
///
/// Deterministic by construction: `BTreeMap` ordering, a seeded hash
/// chain, and a logical tick (no wall clock) for recency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixIndex {
    entries: BTreeMap<u64, Entry>,
    page_tokens: usize,
    tick: u64,
    stats: PrefixIndexStats,
}

impl PrefixIndex {
    /// New empty index for an arena with `page_tokens` tokens per page.
    #[must_use]
    pub fn new(page_tokens: usize) -> Self {
        assert!(page_tokens > 0, "page_tokens must be positive");
        Self {
            entries: BTreeMap::new(),
            page_tokens,
            tick: 0,
            stats: PrefixIndexStats::default(),
        }
    }

    /// Number of cached entries (pages pinned by the cache).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters since construction.
    #[must_use]
    pub fn stats(&self) -> PrefixIndexStats {
        self.stats
    }

    /// Resolve the longest cached prefix of `prompt`.
    ///
    /// Walks full-page links from the root, then tries partial
    /// terminator lengths (longest first) for the boundary. The match
    /// is capped at `prompt.len() - 1` tokens and every link's stored
    /// span is verified against `prompt`, so the result is exact, not
    /// probabilistic. Matched links have their recency refreshed.
    pub fn lookup(&mut self, prompt: &[u32]) -> PrefixMatch {
        self.tick += 1;
        self.stats.lookups += 1;
        let cap = prompt.len().saturating_sub(1);
        let mut m = PrefixMatch::default();
        let mut h = PREFIX_SEED;
        // Full pages first: greedy is safe because eviction keeps every
        // chain contiguous from the root (no gaps to skip over).
        while m.tokens + self.page_tokens <= cap {
            let span = &prompt[m.tokens..m.tokens + self.page_tokens];
            let next = chain_hash(h, span);
            match self.entries.get_mut(&next) {
                Some(e) if e.tokens == span => {
                    e.last_hit = self.tick;
                    m.pages.push(e.page);
                    m.tokens += self.page_tokens;
                    h = next;
                }
                _ => break,
            }
        }
        // Boundary: longest partial terminator that still fits the cap.
        let room = (cap - m.tokens).min(self.page_tokens - 1);
        for len in (1..=room).rev() {
            let span = &prompt[m.tokens..m.tokens + len];
            let next = chain_hash(h, span);
            if let Some(e) = self.entries.get_mut(&next) {
                if e.tokens == span {
                    e.last_hit = self.tick;
                    m.pages.push(e.page);
                    m.tokens += len;
                    break;
                }
            }
        }
        if m.tokens > 0 {
            self.stats.hits += 1;
            self.stats.reused_tokens += m.tokens as u64;
        }
        m
    }

    /// Register the pages holding `tokens` (a slot's fed history).
    ///
    /// `pages` is the slot's block table over that span: one link per
    /// full page, plus — iff `tokens` doesn't end on a page boundary —
    /// a final partial terminator. Links that already exist with the
    /// identical span are refreshed, not re-inserted; a hash collision
    /// with a *different* span stops the chain (nothing past it could
    /// ever be looked up). Returns the pages of newly created entries —
    /// the caller must pin exactly these (one arena refcount each).
    pub fn register(&mut self, tokens: &[u32], pages: &[usize]) -> Vec<usize> {
        let full = tokens.len() / self.page_tokens;
        let rem = tokens.len() % self.page_tokens;
        let want = full + usize::from(rem > 0);
        assert!(
            pages.len() >= want,
            "{} pages cannot hold {} tokens",
            pages.len(),
            tokens.len()
        );
        self.tick += 1;
        let mut pinned = Vec::new();
        let mut h = PREFIX_SEED;
        for (i, &page) in pages.iter().enumerate().take(want) {
            let lo = i * self.page_tokens;
            let span = &tokens[lo..(lo + self.page_tokens).min(tokens.len())];
            let next = chain_hash(h, span);
            match self.entries.get_mut(&next) {
                Some(e) if e.tokens == span => {
                    e.last_hit = self.tick;
                    self.stats.deduped += 1;
                }
                Some(_) => break, // collision: an unreachable tail is useless
                None => {
                    let e = Entry {
                        tokens: span.to_vec(),
                        page,
                        prev: h,
                        last_hit: self.tick,
                    };
                    self.entries.insert(next, e);
                    self.stats.inserted += 1;
                    pinned.push(page);
                }
            }
            if span.len() < self.page_tokens {
                break; // partial links are chain terminators
            }
            h = next;
        }
        pinned
    }

    /// Pages that eviction could release right now: entries whose page
    /// is held by nothing but the cache pin (`refcounts[page] == 1`).
    #[must_use]
    pub fn evictable_pages(&self, refcounts: &[u32]) -> usize {
        self.entries
            .values()
            .filter(|e| refcounts[e.page] == 1)
            .count()
    }

    /// Evict the least-recently-hit entry whose page only the cache
    /// still holds, cascading over its descendants so surviving chains
    /// stay contiguous from the root. Returns the evicted entries'
    /// pages — the caller must drop one pin per page. Empty when no
    /// entry is evictable (every cached page is also mapped by a slot).
    pub fn evict_lru(&mut self, refcounts: &[u32]) -> Vec<usize> {
        // Both lookup and register refresh chains root-first, so an
        // ancestor is never colder than its descendants and the global
        // minimum is always reachable at a leaf of an equally-cold
        // subtree. Descend ties so a cold chain sheds its deepest page
        // first, keeping the shorter (more sharable) prefix cached.
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| refcounts[e.page] == 1)
            .min_by_key(|(hash, e)| (e.last_hit, **hash))
            .map(|(hash, _)| *hash);
        let Some(mut root) = victim else {
            return Vec::new();
        };
        let cold = self.entries[&root].last_hit;
        loop {
            let deeper = self
                .entries
                .iter()
                .filter(|(_, e)| e.prev == root && e.last_hit == cold && refcounts[e.page] == 1)
                .map(|(hash, _)| *hash)
                .min();
            match deeper {
                Some(h) => root = h,
                None => break,
            }
        }
        let mut doomed = vec![root];
        let mut i = 0;
        while i < doomed.len() {
            let parent = doomed[i];
            doomed.extend(
                self.entries
                    .iter()
                    .filter(|(_, e)| e.prev == parent)
                    .map(|(hash, _)| *hash),
            );
            i += 1;
        }
        let mut pages = Vec::with_capacity(doomed.len());
        for hash in doomed {
            let e = self
                .entries
                .remove(&hash)
                .expect("doomed entry vanished mid-cascade");
            self.stats.evicted += 1;
            pages.push(e.page);
        }
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(lo: u32, n: usize) -> Vec<u32> {
        (lo..lo + n as u32).collect()
    }

    #[test]
    fn chain_hash_is_length_disambiguated() {
        // Without length folding these two would collapse to one fold.
        let whole = chain_hash(PREFIX_SEED, &[7, 8]);
        let split = chain_hash(chain_hash(PREFIX_SEED, &[7]), &[8]);
        assert_ne!(whole, split);
        // And it is a pure function of (prev, span).
        assert_eq!(chain_hash(PREFIX_SEED, &[7, 8]), whole);
    }

    #[test]
    fn register_then_lookup_round_trips_full_pages() {
        let mut ix = PrefixIndex::new(4);
        let prompt = toks(10, 8);
        assert_eq!(ix.register(&prompt, &[3, 5]), vec![3, 5]);
        // Identical prompt: both pages hit, capped below prompt length.
        let mut longer = prompt.clone();
        longer.push(99);
        let m = ix.lookup(&longer);
        assert_eq!(
            m,
            PrefixMatch {
                pages: vec![3, 5],
                tokens: 8
            }
        );
        // Exact-length prompt: cap forbids consuming the whole prompt.
        let m = ix.lookup(&prompt);
        assert_eq!(m.tokens, 4);
        assert_eq!(m.pages, vec![3]);
    }

    #[test]
    fn partial_terminator_matches_longest_first() {
        let mut ix = PrefixIndex::new(4);
        // 6 tokens: one full page + a 2-token terminator.
        assert_eq!(ix.register(&toks(0, 6), &[1, 0]), vec![1, 0]);
        let mut prompt = toks(0, 6);
        prompt.extend([50, 51]);
        let m = ix.lookup(&prompt);
        assert_eq!(
            m,
            PrefixMatch {
                pages: vec![1, 0],
                tokens: 6
            }
        );
        // A diverging prompt only matches the full page.
        let mut div = toks(0, 4);
        div.extend([90, 91, 92]);
        let m = ix.lookup(&div);
        assert_eq!(
            m,
            PrefixMatch {
                pages: vec![1],
                tokens: 4
            }
        );
    }

    #[test]
    fn register_dedups_shared_prefixes() {
        let mut ix = PrefixIndex::new(4);
        assert_eq!(ix.register(&toks(0, 8), &[2, 4]), vec![2, 4]);
        // Same first page from another slot: only the novel tail pins.
        let mut other = toks(0, 4);
        other.extend(toks(100, 4));
        assert_eq!(ix.register(&other, &[9, 6]), vec![6]);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.stats().deduped, 1);
        // Lookup of the second prompt routes through the *first* copy.
        let mut probe = other.clone();
        probe.push(1);
        assert_eq!(ix.lookup(&probe).pages, vec![2, 6]);
    }

    #[test]
    fn eviction_is_lru_over_sole_owner_pages_and_cascades() {
        let mut ix = PrefixIndex::new(2);
        // Chain A: pages 0,1 — chain B: page 2.
        ix.register(&toks(0, 4), &[0, 1]);
        ix.register(&toks(50, 2), &[2]);
        // Touch chain B so chain A is the LRU.
        let mut probe = toks(50, 2);
        probe.push(9);
        assert_eq!(ix.lookup(&probe).tokens, 2);
        // All pages sole-owned: chain A is coldest, and its *deepest*
        // page goes first so the sharable shorter prefix survives.
        let mut rc = vec![1u32; 3];
        assert_eq!(ix.evictable_pages(&rc), 3);
        assert_eq!(ix.evict_lru(&rc), vec![1]);
        assert_eq!(ix.evict_lru(&rc), vec![0]);
        assert_eq!(ix.len(), 1);
        // Chain B's page gains a slot mapping: nothing left to evict.
        rc[2] = 2;
        assert_eq!(ix.evictable_pages(&rc), 0);
        assert!(ix.evict_lru(&rc).is_empty());
    }

    #[test]
    fn refreshed_chain_outlives_colder_sibling() {
        let mut ix = PrefixIndex::new(2);
        ix.register(&toks(0, 2), &[0]);
        ix.register(&toks(10, 2), &[1]);
        // Hit the older chain; the sibling becomes the LRU victim.
        let mut probe = toks(0, 2);
        probe.push(7);
        assert_eq!(ix.lookup(&probe).pages, vec![0]);
        assert_eq!(ix.evict_lru(&[1, 1]), vec![1]);
        assert_eq!(ix.lookup(&probe).pages, vec![0]);
    }

    #[test]
    fn collision_with_different_span_is_a_miss_not_a_wrong_answer() {
        let mut ix = PrefixIndex::new(4);
        ix.register(&toks(0, 4), &[3]);
        // Forge an entry whose hash matches some other prompt's first
        // page by registering under the victim hash directly.
        let other = toks(200, 4);
        let h = chain_hash(PREFIX_SEED, &other);
        ix.entries.insert(
            h,
            Entry {
                tokens: toks(0, 4),
                page: 5,
                prev: PREFIX_SEED,
                last_hit: 0,
            },
        );
        let mut probe = other.clone();
        probe.push(1);
        // Token verification rejects the forged span.
        assert_eq!(ix.lookup(&probe).tokens, 0);
        // And registration refuses to chain past the collision.
        assert_eq!(ix.register(&other, &[7]), Vec::<usize>::new());
    }

    #[test]
    fn stats_track_traffic() {
        let mut ix = PrefixIndex::new(2);
        ix.register(&toks(0, 4), &[0, 1]);
        let mut probe = toks(0, 4);
        probe.push(9);
        ix.lookup(&probe);
        ix.lookup(&[99, 98, 97]);
        let s = ix.stats();
        assert_eq!(
            (s.lookups, s.hits, s.reused_tokens, s.inserted),
            (2, 1, 4, 2)
        );
    }
}
