//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the subset used by this workspace: a seedable deterministic
//! generator ([`rngs::StdRng`]) and uniform sampling of primitive types
//! through [`RngExt::random`]. The generator is SplitMix64 — fast,
//! well-distributed, and deterministic per seed — **not** the real
//! crate's ChaCha12, so sequences differ from upstream.

/// Core trait for generators: produce the next 64 random bits.
pub trait RngCore {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds produce
    /// equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension trait providing typed uniform sampling, mirroring
/// `rand::Rng::random` from the real crate.
pub trait RngExt: RngCore {
    /// Samples a value of type `T` uniformly: floats land in `[0, 1)`,
    /// integers and `bool` cover their full range.
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(&mut || self.next_u64())
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be sampled uniformly from a stream of `u64`s.
pub trait UniformSample {
    /// Draws one value, pulling 64-bit words from `next`.
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl UniformSample for u64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl UniformSample for u32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl UniformSample for bool {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl UniformSample for f32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        ((next() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for f64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        ((next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; same construction API,
    /// different (but still deterministic) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.random::<f32>();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        assert_ne!(va, vb);
    }
}
