//! Code-generation scenario: long prompt AND long generation
//! (`[128:512]`), plus the prefill-heavy `[128:32]` counter-case where
//! the paper concedes "A100 performs better over LoopLynx … GPUs are more
//! powerful in batched processing during the prefill stage".
//!
//! Also demonstrates top-k sampling on the functional model.
//!
//! ```text
//! cargo run --release --example code_generation
//! ```

use looplynx::baselines::gpu::A100Model;
use looplynx::core::{ArchConfig, LoopLynx};
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::tokenizer::ByteTokenizer;
use looplynx::model::{Autoregressive, ModelConfig, Sampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::gpt2_medium();
    let gpu = A100Model::paper_baseline();
    let arch = ArchConfig::builder().nodes(2).build()?;
    let engine = LoopLynx::new(model.clone(), arch)?;

    println!("workload sensitivity (2-node LoopLynx vs A100):\n");
    for (prefill, decode) in [(128usize, 512usize), (128, 32)] {
        let fpga = engine.simulate_generation(prefill, decode);
        let g = gpu.generation(&model, prefill, decode);
        let speedup = g.total_ms / fpga.total_ms();
        println!(
            "[{prefill:>3}:{decode:>3}]  LoopLynx {:>7.0} ms | A100 {:>7.0} ms | {}",
            fpga.total_ms(),
            g.total_ms,
            if speedup >= 1.0 {
                format!("FPGA wins {speedup:.2}x")
            } else {
                format!("A100 wins {:.2}x", 1.0 / speedup)
            }
        );
    }

    // Functional generation with top-k sampling (tiny model, seeded).
    let cfg = ModelConfig::tiny();
    let mut m = Gpt2Model::synthetic(&cfg, 7);
    let tok = ByteTokenizer::new();
    let prompt = tok.encode("fn main() {");
    let mut sampler = Sampler::top_k(8, 0.9, 1234);
    let out = m.generate(&prompt, 24, &mut sampler);
    println!(
        "\nfunctional top-k generation after {:?}: {:?}",
        "fn main() {",
        tok.decode(&out)
    );
    println!("({} tokens sampled with k=8, T=0.9, seed 1234)", out.len());
    Ok(())
}
