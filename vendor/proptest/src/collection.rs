//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::{CaseResult, TestRng};

/// Admissible lengths for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_one(&self, rng: &mut TestRng) -> CaseResult<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample_one(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_range() {
        let mut rng = TestRng::from_name("vec-len");
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.sample_one(&mut rng).unwrap();
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_length_from_usize() {
        let mut rng = TestRng::from_name("vec-exact");
        let v = vec(0u8..3, 4).sample_one(&mut rng).unwrap();
        assert_eq!(v.len(), 4);
    }
}
