//! Per-token energy accounting.
//!
//! Combines the resource-proportional FPGA power model with simulated
//! latency: energy = board power × wall-clock time. The paper's headline
//! energy claims (2-node uses 37.3 % of the A100's energy, 4-node 48.1 %)
//! follow from exactly this product; the comparison side lives in
//! `looplynx-baselines::gpu`.

use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;

/// Energy outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Average board power in watts during the run.
    pub watts: f64,
    /// Total energy in joules.
    pub joules: f64,
    /// Generated tokens per joule (the paper's Fig. 8(b) metric).
    pub tokens_per_joule: f64,
}

/// Computes the energy report for a run of `seconds` producing
/// `generated_tokens`, at the given average activity factor.
///
/// The decode phase keeps the DMA/MAC path streaming continuously
/// (memory-bound), so activity stays near 1.0; idle bubbles between kernel
/// activations are already inside the latency, not the power.
///
/// # Panics
///
/// Panics if `seconds` is not positive or `generated_tokens` is zero.
pub fn fpga_energy(
    cfg: &ArchConfig,
    seconds: f64,
    generated_tokens: usize,
    activity: f64,
) -> EnergyReport {
    assert!(seconds > 0.0 && seconds.is_finite(), "invalid duration");
    assert!(generated_tokens > 0, "no tokens generated");
    let watts = cfg.power_watts(activity);
    let joules = watts * seconds;
    EnergyReport {
        watts,
        joules,
        tokens_per_joule: generated_tokens as f64 / joules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> ArchConfig {
        ArchConfig::builder().nodes(nodes).build().unwrap()
    }

    #[test]
    fn energy_is_power_times_time() {
        let r = fpga_energy(&cfg(2), 2.0, 100, 1.0);
        assert!((r.joules - r.watts * 2.0).abs() < 1e-9);
        assert!((r.tokens_per_joule - 100.0 / r.joules).abs() < 1e-9);
    }

    #[test]
    fn two_node_board_power_in_calibrated_band() {
        let r = fpga_energy(&cfg(2), 1.0, 1, 1.0);
        assert!(r.watts > 30.0 && r.watts < 45.0, "2-node watts {}", r.watts);
    }

    #[test]
    fn four_nodes_draw_roughly_double() {
        let two = fpga_energy(&cfg(2), 1.0, 1, 1.0).watts;
        let four = fpga_energy(&cfg(4), 1.0, 1, 1.0).watts;
        assert!(four / two > 1.8 && four / two < 2.2);
    }

    #[test]
    fn efficiency_peaks_at_two_nodes_for_fixed_latency_ratio() {
        // With the paper's latencies (6.59 / 3.85 / 2.55 ms per token) the
        // 2-node point should have the best tokens/J — the paper's
        // "2-node implementation maintains the highest energy efficiency".
        let per_token_s = [6.59e-3, 3.85e-3, 2.55e-3];
        let nodes = [1usize, 2, 4];
        let eff: Vec<f64> = nodes
            .iter()
            .zip(per_token_s)
            .map(|(&n, t)| fpga_energy(&cfg(n), t * 100.0, 100, 1.0).tokens_per_joule)
            .collect();
        assert!(eff[1] > eff[0], "2-node should beat 1-node: {eff:?}");
        assert!(eff[1] > eff[2], "2-node should beat 4-node: {eff:?}");
    }

    #[test]
    #[should_panic(expected = "no tokens")]
    fn zero_tokens_rejected() {
        let _ = fpga_energy(&cfg(1), 1.0, 0, 1.0);
    }
}
