//! The simplex ring router (functional side).
//!
//! Paper Fig. 6(c): each node writes its datapacks to its successor and
//! reads from its predecessor; "each router maintains an offset based on
//! the node ID, and the router continuously writes the received datapacks
//! into the buffer starting from this offset. This ensures that all buffers
//! maintain consistent data after … rounds of synchronization."
//!
//! Two gather modes are provided:
//!
//! * [`RingMode::Exact`] — shards travel as exact f32 sub-vectors. With
//!   this mode the distributed computation is bit-identical to the
//!   single-node reference, which the integration tests exploit.
//! * [`RingMode::Quantized`] — shards are quantized to int8 datapacks with
//!   a per-shard scale before travelling (what the hardware actually
//!   sends); receivers dequantize. Numerically close, not identical.

use serde::{Deserialize, Serialize};

use looplynx_sim::net::RingSpec;
use looplynx_sim::time::Cycles;
use looplynx_tensor::quant::{quantize_vec, QuantizedVector};

/// How gathered activations travel on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RingMode {
    /// Exact f32 payloads (reference algebra; 4 B/element traffic).
    Exact,
    /// Int8 datapacks with per-shard scales (hardware path; 1 B/element).
    #[default]
    Quantized,
}

/// The functional ring: gathers per-node sub-vectors into the full vector
/// every node needs, mirroring the router's offset rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    nodes: usize,
    mode: RingMode,
}

impl Router {
    /// Creates a router for `nodes` ring nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, mode: RingMode) -> Self {
        assert!(nodes > 0, "ring needs at least one node");
        Router { nodes, mode }
    }

    /// Ring size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Gather mode.
    pub fn mode(&self) -> RingMode {
        self.mode
    }

    /// All-gathers one sub-vector per node into the full vector (every node
    /// receives an identical copy; we return it once).
    ///
    /// Shard `i` lands at offset `i × shard_len` — the router's node-id
    /// offset rule, which makes every node's buffer identical after the
    /// final round.
    ///
    /// # Panics
    ///
    /// Panics if the shard count differs from the ring size or shard
    /// lengths are unequal.
    pub fn all_gather(&self, shards: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(shards.len(), self.nodes, "one shard per node");
        let shard_len = shards.first().map_or(0, Vec::len);
        assert!(
            shards.iter().all(|s| s.len() == shard_len),
            "unequal shard lengths"
        );
        match self.mode {
            RingMode::Exact => shards.concat(),
            RingMode::Quantized => {
                let mut out = Vec::with_capacity(shard_len * self.nodes);
                for shard in shards {
                    // quant unit → datapacks → router → dequantize at the
                    // consumer; per-shard scale travels in the header
                    let q: QuantizedVector = quantize_vec(shard);
                    out.extend(q.dequantize());
                }
                out
            }
        }
    }

    /// [`Router::all_gather`] taking ownership of the shards: identical
    /// output, but a single exact shard (the 1-node ring) is moved out
    /// instead of copied — the common fast path of the functional engine.
    ///
    /// # Panics
    ///
    /// Panics if the shard count differs from the ring size or shard
    /// lengths are unequal.
    pub fn all_gather_owned(&self, shards: Vec<Vec<f32>>) -> Vec<f32> {
        if self.nodes == 1 && self.mode == RingMode::Exact {
            assert_eq!(shards.len(), 1, "one shard per node");
            return shards.into_iter().next().expect("one shard");
        }
        self.all_gather(&shards)
    }

    /// Bytes one node contributes to a gather of `elements` per node.
    pub fn shard_bytes(&self, elements: usize) -> usize {
        match self.mode {
            RingMode::Exact => elements * 4,
            RingMode::Quantized => elements,
        }
    }

    /// Cycles for the all-gather on the given ring model.
    pub fn gather_cycles(&self, ring: &RingSpec, elements_per_node: usize) -> Cycles {
        ring.all_gather_cycles(self.shard_bytes(elements_per_node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looplynx_sim::time::Frequency;

    #[test]
    fn exact_gather_concatenates_in_node_order() {
        let r = Router::new(3, RingMode::Exact);
        let full = r.all_gather(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(full, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn quantized_gather_is_close() {
        let r = Router::new(2, RingMode::Quantized);
        let a: Vec<f32> = (0..16).map(|i| (i as f32 * 0.31).sin()).collect();
        let b: Vec<f32> = (0..16).map(|i| (i as f32 * 0.17).cos()).collect();
        let full = r.all_gather(&[a.clone(), b.clone()]);
        let expect: Vec<f32> = a.into_iter().chain(b).collect();
        for (x, y) in full.iter().zip(&expect) {
            assert!((x - y).abs() < 0.02, "{x} vs {y}");
        }
    }

    #[test]
    fn quantized_shards_use_independent_scales() {
        // A huge shard must not destroy the precision of a small shard.
        let r = Router::new(2, RingMode::Quantized);
        let small = vec![0.01f32, -0.02];
        let big = vec![100.0f32, -50.0];
        let full = r.all_gather(&[small, big]);
        assert!(
            (full[0] - 0.01).abs() < 0.001,
            "small shard crushed: {}",
            full[0]
        );
        assert!((full[2] - 100.0).abs() < 1.0);
    }

    #[test]
    fn single_node_gather_is_identity() {
        let r = Router::new(1, RingMode::Exact);
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(r.all_gather(std::slice::from_ref(&v)), v);
    }

    #[test]
    fn traffic_depends_on_mode() {
        let q = Router::new(4, RingMode::Quantized);
        let e = Router::new(4, RingMode::Exact);
        assert_eq!(q.shard_bytes(256), 256);
        assert_eq!(e.shard_bytes(256), 1024);
        let ring = RingSpec::paper_ring(4, Frequency::from_mhz(285.0));
        assert!(q.gather_cycles(&ring, 256) < e.gather_cycles(&ring, 256));
    }

    #[test]
    #[should_panic(expected = "one shard per node")]
    fn shard_count_checked() {
        let r = Router::new(2, RingMode::Exact);
        let _ = r.all_gather(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "unequal shard lengths")]
    fn shard_length_checked() {
        let r = Router::new(2, RingMode::Exact);
        let _ = r.all_gather(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
