//! The rule engine: what the workspace promises, checked token by token.
//!
//! Each rule scans the token stream of one file (lexed by
//! [`crate::lexer`]) and emits [`Finding`]s for non-test code. A finding
//! can be waived **per site** with a comment on the offending line or
//! the line above:
//!
//! ```text
//! // lint: allow(<rule>) — <reason>
//! ```
//!
//! The reason is mandatory — a waiver without one does not suppress
//! anything. See `docs/INVARIANTS.md` for the catalogue of rules and
//! the policy on when a waiver is acceptable.

use std::collections::BTreeMap;

use crate::lexer::{lex, mark_test_code, Token, TokenKind};

/// Rule names, as used in findings and waiver comments.
pub const RULE_PANIC_FREE: &str = "panic_free";
/// See [`RULE_PANIC_FREE`].
pub const RULE_SAFETY_COMMENT: &str = "safety_comment";
/// See [`RULE_PANIC_FREE`].
pub const RULE_DETERMINISM: &str = "determinism";
/// See [`RULE_PANIC_FREE`].
pub const RULE_BOUNDED_CHANNEL: &str = "bounded_channel";

/// Every rule the engine knows, for waiver validation and reporting.
pub const ALL_RULES: [&str; 4] = [
    RULE_PANIC_FREE,
    RULE_SAFETY_COMMENT,
    RULE_DETERMINISM,
    RULE_BOUNDED_CHANNEL,
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Serving-path files that must be panic-free (errors flow through
/// `BackendError` instead).
const PANIC_FREE_FILES: [&str; 5] = [
    "crates/serve/src/gateway.rs",
    "crates/serve/src/batcher.rs",
    "crates/core/src/backend.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/pool.rs",
];

/// Method calls banned on the panic-free paths.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros banned on the panic-free paths. `assert!`/`debug_assert!` stay
/// allowed: they document caller contracts and the test wall exercises
/// them.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Identifiers that betray nondeterminism in the bit-exact crates:
/// wall-clock types, hash-order collections, entropy-seeded RNGs, and
/// randomly-keyed hashers (the prefix index must chain a seeded hash —
/// `RandomState`-keyed digests change across runs).
const NONDETERMINISM_IDENTS: [&str; 8] = [
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "thread_rng",
    "from_entropy",
    "DefaultHasher",
    "RandomState",
];

fn panic_free_applies(path: &str) -> bool {
    PANIC_FREE_FILES.contains(&path)
}

fn determinism_applies(path: &str) -> bool {
    path.starts_with("crates/model/src/") || path == "crates/core/src/backend.rs"
}

fn bounded_channel_applies(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
}

/// Lints one file's source as if it lived at `path` (repo-relative,
/// forward slashes). Waivers are already applied; what comes back is
/// actionable.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let in_test = mark_test_code(&tokens);
    let lines: Vec<&str> = source.lines().collect();
    let waivers = collect_waivers(&tokens);
    let mut findings = Vec::new();

    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let ident = match tok.ident() {
            Some(s) => s,
            None => continue,
        };
        let next_punct = tokens[i + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokenKind::LineComment(_)))
            .and_then(Token::punct);
        let prev_punct = tokens[..i]
            .iter()
            .rev()
            .find(|t| !matches!(t.kind, TokenKind::LineComment(_)))
            .and_then(Token::punct);

        if panic_free_applies(path) {
            if PANIC_METHODS.contains(&ident)
                && next_punct == Some('(')
                && matches!(prev_punct, Some('.') | Some(':'))
            {
                findings.push(Finding {
                    file: path.to_string(),
                    line: tok.line,
                    rule: RULE_PANIC_FREE,
                    message: format!(
                        "`{ident}()` on a serving path — route the error through \
                         `BackendError` or a typed result"
                    ),
                });
            }
            if PANIC_MACROS.contains(&ident) && next_punct == Some('!') {
                findings.push(Finding {
                    file: path.to_string(),
                    line: tok.line,
                    rule: RULE_PANIC_FREE,
                    message: format!(
                        "`{ident}!` on a serving path — return an error instead of \
                         panicking"
                    ),
                });
            }
        }

        if ident == "unsafe" && !has_adjacent_safety_comment(&tokens, tok.line, &lines) {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: RULE_SAFETY_COMMENT,
                message: "`unsafe` without an adjacent `// SAFETY:` comment (or \
                          `/// # Safety` section for an unsafe fn)"
                    .to_string(),
            });
        }

        if determinism_applies(path) && NONDETERMINISM_IDENTS.contains(&ident) {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: RULE_DETERMINISM,
                message: format!(
                    "`{ident}` in a bit-exact crate — use seeded RNGs, BTree \
                     collections, and keep wall-clock out of token-affecting paths"
                ),
            });
        }

        if bounded_channel_applies(path)
            && ident == "channel"
            && (next_punct == Some('(') || prev_punct == Some(':'))
        {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: RULE_BOUNDED_CHANNEL,
                message: "unbounded `channel()` in serve — use `sync_channel(n)` so \
                          backpressure is explicit"
                    .to_string(),
            });
        }
    }

    findings.retain(|f| !is_waived(&waivers, f));
    findings
}

/// Waivers by line: `line → rules waived there`. Only waivers carrying a
/// reason count.
fn collect_waivers(tokens: &[Token]) -> BTreeMap<u32, Vec<String>> {
    let mut out: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for tok in tokens {
        let text = match &tok.kind {
            TokenKind::LineComment(text) => text,
            _ => continue,
        };
        if let Some((rule, has_reason)) = parse_waiver(text) {
            if has_reason {
                out.entry(tok.line).or_default().push(rule);
            }
        }
    }
    out
}

/// Parses `lint: allow(<rule>) — <reason>` from a comment body. Returns
/// the rule name and whether a non-empty reason follows.
fn parse_waiver(comment: &str) -> Option<(String, bool)> {
    let rest = comment.trim_start().strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim();
    Some((rule, !reason.is_empty()))
}

/// A finding is waived by a matching waiver on its own line or the line
/// directly above.
fn is_waived(waivers: &BTreeMap<u32, Vec<String>>, f: &Finding) -> bool {
    [f.line, f.line.saturating_sub(1)].iter().any(|line| {
        waivers
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == f.rule))
    })
}

/// Whether the `unsafe` at `line` has a SAFETY comment adjacent: a
/// trailing comment on the same line, or — scanning upward over comment
/// and attribute lines — a `// SAFETY:` / `/// # Safety` marker. The
/// upward scan works on raw lines so it can cross rustfmt-wrapped
/// comment blocks and attribute stacks (e.g. `#[target_feature(…)]`
/// between an unsafe fn and its `# Safety` docs).
fn has_adjacent_safety_comment(tokens: &[Token], line: u32, lines: &[&str]) -> bool {
    let marker = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    // Trailing comment on the same line.
    if tokens
        .iter()
        .any(|t| t.line == line && matches!(&t.kind, TokenKind::LineComment(text) if marker(text)))
    {
        return true;
    }
    // Upward over contiguous comments and attributes.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = match lines.get(l as usize - 1) {
            Some(t) => t.trim(),
            None => return false,
        };
        if text.starts_with("//") {
            if marker(text) {
                return true;
            }
        } else if !text.starts_with("#[") {
            return false;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parses_with_reason() {
        assert_eq!(
            parse_waiver(" lint: allow(panic_free) — scheduler contract"),
            Some(("panic_free".to_string(), true))
        );
        assert_eq!(
            parse_waiver(" lint: allow(determinism) - measured wall clock"),
            Some(("determinism".to_string(), true))
        );
    }

    #[test]
    fn waiver_without_reason_does_not_count() {
        assert_eq!(
            parse_waiver(" lint: allow(panic_free)"),
            Some(("panic_free".to_string(), false))
        );
        let src = "fn f() {\n    // lint: allow(panic_free)\n    x.unwrap();\n}\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1, "reasonless waiver must not suppress");
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let above =
            "fn f() {\n    // lint: allow(panic_free) — test of the waiver\n    x.unwrap();\n}\n";
        assert!(lint_source("crates/core/src/engine.rs", above).is_empty());
        let trailing =
            "fn f() {\n    x.unwrap(); // lint: allow(panic_free) — test of the waiver\n}\n";
        assert!(lint_source("crates/core/src/engine.rs", trailing).is_empty());
    }

    #[test]
    fn rule_scoping_by_path() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_source("crates/core/src/engine.rs", src).len(), 1);
        assert!(
            lint_source("crates/model/src/attention.rs", src).is_empty(),
            "panic_free only guards the serving-path files"
        );
    }

    #[test]
    fn unwrap_combinators_are_fine() {
        let src = "fn f() { x.unwrap_or_else(|| 0); y.unwrap_or_default(); }\n";
        assert!(lint_source("crates/serve/src/gateway.rs", src).is_empty());
    }
}
