//! # looplynx-tensor — W8A8 quantized tensor substrate
//!
//! The LoopLynx paper evaluates GPT-2 under the SmoothQuant W8A8
//! quantization scheme: 8-bit symmetric weights and activations with 32-bit
//! integer accumulation, which is exactly what the accelerator's MAC
//! hardware computes (`i8 × i8 → i32`, paper Section III-D). This crate
//! provides that arithmetic as a standalone substrate:
//!
//! * [`matrix`] — row-major dense matrices (owned or zero-copy views
//!   into a memory-mapped checkpoint arena).
//! * [`mmap`] — read-only memory-mapped byte arenas backing those views.
//! * [`quant`] — symmetric per-tensor / per-row quantization and
//!   SmoothQuant-style activation-difficulty migration.
//! * [`linear`] — integer GEMV/GEMM and the fused
//!   dequantize–bias–requantize epilogue performed by the paper's
//!   quantization unit.
//! * [`norm`] — layer normalization and residual connections (the paper's
//!   "critical path operators").
//! * [`activation`] — GELU and the two-phase softmax whose structure the
//!   fused MHA kernel pipelines head-wise.
//!
//! # Example
//!
//! ```
//! use looplynx_tensor::matrix::Matrix;
//! use looplynx_tensor::quant::quantize_vec;
//! use looplynx_tensor::linear::QuantLinear;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Matrix::from_fn(4, 8, |r, c| ((r + c) as f32 - 5.0) / 10.0);
//! let lin = QuantLinear::from_f32(&w, &[0.0; 4])?;
//! let x = quantize_vec(&[0.25; 8]);
//! let y = lin.forward(&x);
//! assert_eq!(y.len(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod activation;
pub mod error;
pub mod linear;
pub mod matrix;
pub mod mmap;
pub mod norm;
pub mod quant;
pub mod simd;

pub use error::ShapeError;
pub use linear::QuantLinear;
pub use matrix::Matrix;
pub use quant::{QuantizedMatrix, QuantizedVector};
