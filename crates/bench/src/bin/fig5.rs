//! Regenerates paper Fig. 5 (latency breakdown + optimization gains).
use looplynx_bench::{experiments, paper};
use looplynx_model::ModelConfig;

fn main() {
    let model = ModelConfig::gpt2_medium();
    print!("{}", experiments::render_fig5(&model));
    println!();
    let levels = experiments::fig5(&model);
    println!(
        "paper-vs-measured: baseline linear+MHA {} | cumulative reduction {}",
        paper::compare(
            levels[0].linear_mha_fraction,
            paper::FIG5_LINEAR_MHA_FRACTION
        ),
        paper::compare(
            levels[2].reduction_vs_baseline,
            paper::FIG5_CUMULATIVE_REDUCTION
        ),
    );
}
