//! Case driver: configuration, the per-test RNG, and the run loop.

/// Run-time configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away or filtered) cases
    /// tolerated across the whole run before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The case hit a `prop_assume!` / `prop_filter` that did not hold;
    /// it is skipped and resampled, not counted as a failure.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl CaseError {
    /// A failing-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }

    /// A rejected-case (resample) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        CaseError::Reject(msg.into())
    }
}

/// Outcome of one sampled case.
pub type CaseResult<T> = Result<T, CaseError>;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so every property gets a
    /// distinct but run-to-run stable input sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a well-spread 64-bit seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs one property over `config.cases` successful cases, retrying
/// rejected cases and panicking (like `assert!`) on the first failure.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> CaseResult<()>,
) {
    let mut rng = TestRng::from_name(name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    while successes < config.cases {
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(CaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejects}; last reason: {why})"
                    );
                }
            }
            Err(CaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {successes} passing case(s):\n{msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_all_cases_pass() {
        run_cases("t::ok", &ProptestConfig::with_cases(10), |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn panics_on_failure() {
        run_cases("t::fail", &ProptestConfig::with_cases(10), |_| {
            Err(CaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn panics_on_reject_storm() {
        run_cases("t::reject", &ProptestConfig::with_cases(1), |_| {
            Err(CaseError::reject("never"))
        });
    }

    #[test]
    fn rng_is_stable_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
