// Lexer resync fixture: after every tricky literal below, the lexer
// must be back in sync — the single real offender at the end is the
// only thing a serving-path lint may report.

fn tricky() -> usize {
    let a = r##"raw with "quote"# and x.unwrap() inside"##;
    let b = "escaped \" quote then // not a comment";
    let c = 'x';
    let d = '\'';
    let e: &'static str = "lifetime ahead";
    /* nested /* block /* deep */ */ comment with panic!("?") */
    let f = b"byte string with .expect(msg)";
    a.len() + b.len() + (c as usize) + (d as usize) + e.len() + f.len()
}

fn the_offender(x: Option<u32>) -> u32 {
    x.unwrap()
}
