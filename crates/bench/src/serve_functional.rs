//! Functional continuous-batching serving benchmark.
//!
//! Measures what the backend refactor bought: sustained output tokens/s
//! of the *functional* W8A8 engine serving a saturating request workload,
//! continuous batching at decode-batch ceilings of 1/4/16 against the
//! one-request-at-a-time sequential baseline. Unlike `serve_sweep`
//! (simulated accelerator time) this is measured host wall-clock — the
//! same clock domain as the `hotpath` benchmark.
//!
//! Decode is memory-bound: one token streams every weight byte once. The
//! sequential baseline pays that stream per request per token; batched
//! decode tiles each 32-row weight block across all resident sequences,
//! so one stream serves the whole batch — throughput should approach
//! `batch ×` until per-sequence attention work dominates.
//!
//! The `serve_functional` binary renders `BENCH_serve_functional.json`,
//! embedding the pinned pre-change baseline ([`BASELINE`]) so every run
//! reports its speedup against the single-sequence engine the repo had
//! before batched decode existed.

use std::time::Instant;

use looplynx_core::backend::{FunctionalBackend, SamplerSpec};
use looplynx_core::engine::DistributedGpt2;
use looplynx_core::router::RingMode;
use looplynx_model::config::ModelConfig;
use looplynx_model::gpt2::Gpt2Model;
use looplynx_serve::{serve_continuous_on, serve_sequential_on, ArrivalProcess, ServeConfig};

use crate::hotpath::medium_shaped;

/// Decode-batch ceilings swept.
pub const BATCH_SWEEP: [usize; 3] = [1, 4, 16];

/// Timed repetitions per cell; the best (highest-throughput) repetition
/// is reported, matching the `hotpath` methodology.
pub const MEASURE_REPS: usize = 5;

/// Single-sequence functional decode throughput of the **pre-change**
/// tree (PR 4 state: no batched decode, no slot arena), measured on this
/// repo by `hotpath` immediately before the backend refactor landed.
/// Sequential serving cannot beat single-sequence decode throughput, so
/// this is the bar batched decode is judged against.
pub const BASELINE: Baseline = Baseline {
    captured_at: "pre-batched-decode (PR 4 tree, hotpath best-of-5 before this refactor)",
    medium_decode_tok_s_1node: 251.4,
    tiny_decode_tok_s_1node: 48_088.0,
};

/// Pre-change reference numbers baked into the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Where the numbers come from.
    pub captured_at: &'static str,
    /// Decode tokens/s, [`medium_shaped`], 1 node, single sequence.
    pub medium_decode_tok_s_1node: f64,
    /// Decode tokens/s, `ModelConfig::tiny()`, 1 node, single sequence.
    pub tiny_decode_tok_s_1node: f64,
}

/// One measured serving cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPoint {
    /// Decode-batch ceiling (= resident slots).
    pub max_batch: usize,
    /// Sustained output tokens/s over the full serving makespan —
    /// prefills included (best repetition).
    pub tok_s: f64,
    /// Steady-state decode throughput: tokens per second over decode
    /// iterations only, all slots resident — the Table III convention
    /// ([`looplynx_core::engine::GenerationReport::tokens_per_second`]
    /// is likewise decode-only). Best repetition.
    pub decode_tok_s: f64,
}

/// The full functional-serving report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFunctionalReport {
    /// Model configuration name.
    pub model: String,
    /// Ring size.
    pub nodes: usize,
    /// Requests served per cell (all arriving at t = 0).
    pub requests: usize,
    /// Prompt tokens per request.
    pub prefill_tokens: usize,
    /// Output tokens per request.
    pub decode_tokens: usize,
    /// Sequential (one-request-at-a-time) serving tokens/s over the full
    /// makespan — **the sequential-serving baseline**.
    pub sequential_tok_s: f64,
    /// Sequential steady-state decode throughput (single resident
    /// sequence, decode iterations only).
    pub sequential_decode_tok_s: f64,
    /// Continuous batching at each ceiling of [`BATCH_SWEEP`].
    pub batched: Vec<BatchPoint>,
    /// Host wall-clock of the whole measurement.
    pub wall_s: f64,
    /// Whether the run used the reduced `--quick` workload.
    pub quick: bool,
}

impl ServeFunctionalReport {
    /// Batched tokens/s at the given ceiling (0.0 if not measured).
    pub fn batched_tok_s(&self, max_batch: usize) -> f64 {
        self.batched
            .iter()
            .find(|p| p.max_batch == max_batch)
            .map_or(0.0, |p| p.tok_s)
    }

    /// Batched decode tokens/s at the given ceiling (0.0 if not measured).
    pub fn batched_decode_tok_s(&self, max_batch: usize) -> f64 {
        self.batched
            .iter()
            .find(|p| p.max_batch == max_batch)
            .map_or(0.0, |p| p.decode_tok_s)
    }

    /// Batch-16 steady-state batched-decode throughput over the
    /// sequential-serving baseline — the acceptance metric of the
    /// batched-decode work (target ≥ 4×). Both sides are this report's
    /// own measurements: decode-phase tokens/s at batch 16 (the Table
    /// III decode-only convention) against the sequential serving run.
    pub fn batch16_speedup_vs_sequential(&self) -> f64 {
        if self.sequential_tok_s <= 0.0 {
            return 0.0;
        }
        self.batched_decode_tok_s(16) / self.sequential_tok_s
    }

    /// Like-for-like steady-state ratio: batched decode tokens/s at
    /// batch 16 over *sequential decode* tokens/s (prefill excluded on
    /// both sides).
    pub fn batch16_decode_speedup_vs_sequential_decode(&self) -> f64 {
        if self.sequential_decode_tok_s <= 0.0 {
            return 0.0;
        }
        self.batched_decode_tok_s(16) / self.sequential_decode_tok_s
    }
}

fn fresh_backend(
    model: &Gpt2Model,
    nodes: usize,
    slots: usize,
    capacity: usize,
) -> FunctionalBackend {
    let engine = DistributedGpt2::with_slots(model, nodes, RingMode::Exact, slots, capacity)
        .expect("benchmark model partitions");
    FunctionalBackend::new(engine, SamplerSpec::Greedy)
}

/// Measures one configuration. All requests arrive at t = 0 (maximal
/// queueing pressure), so sustained tokens/s is output tokens over the
/// serving makespan. Each cell is re-measured [`MEASURE_REPS`] times on a
/// fresh backend (engine construction is excluded — the serving clock
/// only advances on backend operations) and the best repetition wins.
pub fn measure_model(
    cfg: &ModelConfig,
    nodes: usize,
    requests: usize,
    prefill_tokens: usize,
    decode_tokens: usize,
) -> ServeFunctionalReport {
    assert!(
        requests >= BATCH_SWEEP.iter().copied().max().unwrap_or(1),
        "need at least as many requests as the largest batch ceiling, or \
         the largest sweep cell would measure a smaller batch than its label"
    );
    let model = Gpt2Model::synthetic(cfg, 4207);
    let capacity = (prefill_tokens + decode_tokens).min(cfg.max_seq);
    let workload = ArrivalProcess::Trace(vec![0.0; requests]).workload_with_prompts(
        requests,
        &[(prefill_tokens, decode_tokens)],
        cfg.vocab,
        0x5EED,
    );
    let t0 = Instant::now();

    let mut sequential_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let mut backend = fresh_backend(&model, nodes, 1, capacity);
        let report = serve_sequential_on(&mut backend, &workload);
        sequential_tok_s = sequential_tok_s.max(report.tokens_per_second());
    }
    let mut sequential_decode_tok_s = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let mut backend = fresh_backend(&model, nodes, 1, capacity);
        sequential_decode_tok_s = sequential_decode_tok_s.max(decode_phase_tok_s(
            &mut backend,
            &workload[..1],
            decode_tokens,
        ));
    }

    let batched = BATCH_SWEEP
        .iter()
        .map(|&max_batch| {
            let cfg_serve = ServeConfig::new(max_batch);
            let mut tok_s = 0.0f64;
            for _ in 0..MEASURE_REPS {
                let mut backend = fresh_backend(&model, nodes, max_batch, capacity);
                let report = serve_continuous_on(&mut backend, &workload, &cfg_serve);
                debug_assert_eq!(report.completed(), requests);
                tok_s = tok_s.max(report.tokens_per_second());
            }
            let mut decode_tok_s = 0.0f64;
            for _ in 0..MEASURE_REPS {
                let mut backend = fresh_backend(&model, nodes, max_batch, capacity);
                decode_tok_s = decode_tok_s.max(decode_phase_tok_s(
                    &mut backend,
                    &workload[..max_batch.min(requests)],
                    decode_tokens,
                ));
            }
            BatchPoint {
                max_batch,
                tok_s,
                decode_tok_s,
            }
        })
        .collect();

    ServeFunctionalReport {
        model: cfg.name.clone(),
        nodes,
        requests,
        prefill_tokens,
        decode_tokens,
        sequential_tok_s,
        sequential_decode_tok_s,
        batched,
        wall_s: t0.elapsed().as_secs_f64(),
        quick: false,
    }
}

/// Steady-state decode throughput: admits `residents` (prefill untimed),
/// then times `decode_tokens - 1` full decode iterations with every slot
/// resident, summing the backend-reported elapsed time. This is the
/// Table III decode-only operating point of the serving stack.
fn decode_phase_tok_s(
    backend: &mut FunctionalBackend,
    residents: &[looplynx_serve::Request],
    decode_tokens: usize,
) -> f64 {
    use looplynx_core::backend::InferenceBackend;
    let slots: Vec<usize> = residents
        .iter()
        .map(|r| {
            backend
                .prefill(r.prefill_tokens, r.prompt.as_deref(), r.id)
                .expect("bench workload fits the arena")
                .slot
        })
        .collect();
    let mut decode_ms = 0.0f64;
    let mut tokens = 0usize;
    for _ in 1..decode_tokens {
        let out = backend
            .decode_batch(&slots)
            .expect("bench decodes resident slots");
        decode_ms += out.elapsed_ms;
        tokens += slots.len();
    }
    for slot in slots {
        backend
            .release(slot)
            .expect("bench releases resident slots");
    }
    if decode_ms <= 0.0 {
        return 0.0;
    }
    tokens as f64 / (decode_ms / 1e3)
}

/// Runs the benchmark on the [`medium_shaped`] configuration (gpt2-medium
/// per-layer geometry — the regime where weight streaming dominates and
/// batching pays). `quick` shrinks the *sequences*, never the request
/// count: every [`BATCH_SWEEP`] cell must be able to fill its batch, or
/// the `max_batch: 16` JSON cell would silently report a smaller batch.
pub fn measure(quick: bool) -> ServeFunctionalReport {
    let cfg = medium_shaped();
    let mut report = if quick {
        measure_model(&cfg, 1, 16, 8, 12)
    } else {
        measure_model(&cfg, 1, 16, 16, 32)
    };
    report.quick = quick;
    report
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".into()
    }
}

/// Renders the report (plus the pinned [`BASELINE`]) as a JSON document.
pub fn to_json(report: &ServeFunctionalReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"baseline\": {{\n    \"captured_at\": \"{}\",\n    \"medium_decode_tok_s_1node\": {},\n    \"tiny_decode_tok_s_1node\": {}\n  }},\n",
        BASELINE.captured_at,
        json_f64(BASELINE.medium_decode_tok_s_1node),
        json_f64(BASELINE.tiny_decode_tok_s_1node),
    ));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!(
        "  \"model\": \"{}\",\n  \"nodes\": {},\n  \"requests\": {},\n  \"prefill_tokens\": {},\n  \"decode_tokens\": {},\n",
        report.model, report.nodes, report.requests, report.prefill_tokens, report.decode_tokens,
    ));
    out.push_str(&format!(
        "  \"sequential_tok_s\": {},\n",
        json_f64(report.sequential_tok_s)
    ));
    out.push_str(&format!(
        "  \"sequential_decode_tok_s\": {},\n",
        json_f64(report.sequential_decode_tok_s)
    ));
    out.push_str("  \"batched\": [\n");
    for (i, p) in report.batched.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"max_batch\": {}, \"tok_s\": {}, \"decode_tok_s\": {}}}{}\n",
            p.max_batch,
            json_f64(p.tok_s),
            json_f64(p.decode_tok_s),
            if i + 1 < report.batched.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"batch16_speedup_vs_sequential\": {},\n",
        json_f64(report.batch16_speedup_vs_sequential())
    ));
    out.push_str(&format!(
        "  \"batch16_decode_speedup_vs_sequential_decode\": {},\n",
        json_f64(report.batch16_decode_speedup_vs_sequential_decode())
    ));
    out.push_str(&format!(
        "  \"speedup_vs_prechange_single_sequence\": {},\n",
        json_f64(report.batched_decode_tok_s(16) / BASELINE.medium_decode_tok_s_1node)
    ));
    out.push_str(&format!("  \"wall_s\": {}\n}}\n", json_f64(report.wall_s)));
    out
}

/// Renders a human-readable table.
pub fn render(report: &ServeFunctionalReport) -> String {
    let mut out = format!(
        "FUNCTIONAL SERVING — continuous batching vs sequential (host wall-clock)\n\
         model {} on {} node(s): {} requests × [{}:{}]\n\
         sequential baseline : {:>9.1} tok/s e2e, {:>9.1} tok/s decode-phase\n",
        report.model,
        report.nodes,
        report.requests,
        report.prefill_tokens,
        report.decode_tokens,
        report.sequential_tok_s,
        report.sequential_decode_tok_s,
    );
    for p in &report.batched {
        out.push_str(&format!(
            "  batch {:>2}          : {:>9.1} tok/s e2e, {:>9.1} tok/s decode-phase ({:>5.2}x seq e2e)\n",
            p.max_batch,
            p.tok_s,
            p.decode_tok_s,
            if report.sequential_tok_s > 0.0 {
                p.decode_tok_s / report.sequential_tok_s
            } else {
                0.0
            },
        ));
    }
    out.push_str(&format!(
        "pre-change single-sequence decode: {:.1} tok/s ({})\n",
        BASELINE.medium_decode_tok_s_1node, BASELINE.captured_at,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_ordered_throughput() {
        // Full pipeline on the tiny config so the test stays debug-fast:
        // batching must never lose to sequential on a saturating workload.
        let r = measure_model(&ModelConfig::tiny(), 1, 16, 4, 6);
        assert!(r.sequential_tok_s > 0.0);
        for p in &r.batched {
            assert!(p.tok_s > 0.0, "degenerate point {p:?}");
        }
        assert!(
            r.batched_tok_s(4) >= r.batched_tok_s(1) * 0.5,
            "batch 4 collapsed: {r:?}"
        );
    }

    #[test]
    fn json_is_wellformed_enough() {
        let report = ServeFunctionalReport {
            model: "medium-shaped".into(),
            nodes: 1,
            requests: 16,
            prefill_tokens: 16,
            decode_tokens: 32,
            sequential_tok_s: 250.0,
            sequential_decode_tok_s: 280.0,
            batched: vec![
                BatchPoint {
                    max_batch: 1,
                    tok_s: 240.0,
                    decode_tok_s: 260.0,
                },
                BatchPoint {
                    max_batch: 16,
                    tok_s: 1200.0,
                    decode_tok_s: 1500.0,
                },
            ],
            wall_s: 2.0,
            quick: true,
        };
        let j = to_json(&report);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"baseline\""));
        assert!(j.contains("\"batch16_speedup_vs_sequential\": 6.000"));
        assert!(render(&report).contains("tok/s"));
    }
}
