//! Chaos harness: replays bursty/overload traces through the serving
//! gateway while injecting faults at 0/1/5/20%, writes
//! `BENCH_robustness.json`, and exits non-zero on any invariant
//! violation (pass `--quick` for the CI-sized workload, and an optional
//! output path as the other argument).

use std::env;
use std::fs;

use looplynx_bench::chaos;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_robustness.json");
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; usage: chaos [--quick] [output.json]");
                std::process::exit(2);
            }
            other => out_path = other.to_string(),
        }
    }
    let report = chaos::measure(quick);
    print!("{}", chaos::render(&report));
    let json = chaos::to_json(&report);
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    if !report.passed() {
        eprintln!("robustness invariants violated");
        std::process::exit(1);
    }
}
