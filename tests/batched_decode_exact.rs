//! Bit-exactness property suite for multi-sequence batched decode.
//!
//! The continuous-batching contract: decoding a batch of resident
//! sequences through the slot arena — whatever the admission order, the
//! interleaving schedule, the ring size, or the threading mode — produces
//! **byte-identical tokens and logits** to running each sequence alone,
//! sequentially, on a fresh engine. Every deviation would silently
//! corrupt served generations, so this suite drives randomized prompts
//! and schedules through both paths and compares exactly.

use proptest::prelude::*;

use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::model::{Autoregressive, Gpt2Model, ModelConfig, Sampler};

/// Deterministic pseudo-random prompt from a seed (tokens within the
/// tiny-config vocabulary).
fn prompt_from(seed: u64, len: usize, vocab: usize) -> Vec<u32> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 * 0x85EB_CA6B);
            ((h >> 17) % vocab as u64) as u32
        })
        .collect()
}

/// Reference: each sequence alone on a fresh single-sequence engine.
fn lone_generations(
    model: &Gpt2Model,
    nodes: usize,
    threaded: bool,
    prompts: &[Vec<u32>],
    n: usize,
) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
    let mut tokens = Vec::new();
    let mut last_logits = Vec::new();
    for p in prompts {
        let mut eng = DistributedGpt2::new(model, nodes, RingMode::Exact).expect("partitions");
        eng.set_threaded(threaded);
        // Re-derive the generate loop so we can also capture the final
        // logits (generate returns only tokens).
        let mut logits = eng.prefill(p);
        let mut sampler = Sampler::greedy();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(sampler.sample(&logits));
            if i + 1 == n {
                break;
            }
            logits = eng.decode_step(out[i]);
        }
        tokens.push(out);
        last_logits.push(logits);
    }
    (tokens, last_logits)
}

/// Batched: all sequences share one slot-arena engine; admissions are
/// staggered by the schedule and every iteration decodes all residents.
#[allow(clippy::too_many_arguments)]
fn batched_generations(
    model: &Gpt2Model,
    nodes: usize,
    threaded: bool,
    prompts: &[Vec<u32>],
    n: usize,
    admit_at: &[usize],
    capacity: usize,
) -> (Vec<Vec<u32>>, Vec<Vec<f32>>) {
    let count = prompts.len();
    let mut eng = DistributedGpt2::with_slots(model, nodes, RingMode::Exact, count, capacity)
        .expect("partitions");
    eng.set_threaded(threaded);
    let mut slots: Vec<Option<usize>> = vec![None; count];
    let mut samplers: Vec<Sampler> = (0..count).map(|_| Sampler::greedy()).collect();
    let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); count];
    let mut last_logits: Vec<Vec<f32>> = vec![Vec::new(); count];

    for iteration in 0.. {
        // Admit sequences whose time has come (schedule-randomized).
        for (s, &at) in admit_at.iter().enumerate() {
            if at == iteration {
                let slot = eng.acquire_slot().expect("enough slots");
                let logits = eng.prefill_slot(slot, &prompts[s]);
                tokens[s].push(samplers[s].sample(&logits));
                last_logits[s] = logits;
                slots[s] = Some(slot);
            }
        }
        // Decode every resident that still wants tokens.
        let entries: Vec<(usize, usize, u32)> = (0..count)
            .filter_map(|s| {
                let slot = slots[s]?;
                (tokens[s].len() < n).then(|| (s, slot, *tokens[s].last().expect("first token")))
            })
            .collect();
        if entries.is_empty() {
            if (0..count).all(|s| tokens[s].len() >= n) {
                break;
            }
            continue; // nothing resident yet, later admissions pending
        }
        let batch: Vec<(usize, u32)> = entries.iter().map(|&(_, slot, t)| (slot, t)).collect();
        let logits = eng.decode_step_batch(&batch);
        for ((s, slot, _), row) in entries.into_iter().zip(logits) {
            tokens[s].push(samplers[s].sample(&row));
            last_logits[s] = row;
            if tokens[s].len() >= n {
                eng.release_slot(slot);
                slots[s] = None;
            }
        }
    }
    (tokens, last_logits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random prompts and admission schedules, 1/2/4 nodes, threaded and
    /// unthreaded: batched decode is byte-identical to lone sequential
    /// generation — tokens and final logits alike.
    #[test]
    fn batched_decode_is_byte_identical_to_lone_sequences(
        seed in any::<u64>(),
        count in 2usize..5,
        n in 2usize..6,
        threaded in any::<bool>(),
        nodes_pick in 0usize..3,
    ) {
        let nodes = [1usize, 2, 4][nodes_pick];
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 0xBA7C4 ^ (seed % 8));
        let prompts: Vec<Vec<u32>> = (0..count)
            .map(|s| prompt_from(seed ^ s as u64, 2 + (seed as usize >> 3 ^ s) % 5, cfg.vocab))
            .collect();
        // Staggered admissions: sequence s joins at a pseudo-random
        // iteration, so batch composition changes across the run.
        let admit_at: Vec<usize> = (0..count)
            .map(|s| ((seed >> (8 + s)) % 3) as usize)
            .collect();
        let capacity = prompts.iter().map(Vec::len).max().unwrap() + n + 4;

        let (lone_tokens, lone_logits) =
            lone_generations(&model, nodes, threaded, &prompts, n);
        let (batch_tokens, batch_logits) = batched_generations(
            &model, nodes, threaded, &prompts, n, &admit_at, capacity,
        );

        for s in 0..count {
            prop_assert_eq!(
                &batch_tokens[s], &lone_tokens[s],
                "tokens diverged (seq {}, {} nodes, threaded {})", s, nodes, threaded
            );
            prop_assert_eq!(
                &batch_logits[s], &lone_logits[s],
                "final logits diverged (seq {}, {} nodes, threaded {})", s, nodes, threaded
            );
        }
    }

    /// The single-node reference model's slot arena agrees with the
    /// distributed engine's: Gpt2Model::forward_token_batch over a shared
    /// arena is byte-identical to Gpt2Model decoding each sequence alone.
    #[test]
    fn model_level_arena_decode_is_byte_identical(
        seed in any::<u64>(),
        count in 2usize..4,
        steps in 1usize..5,
    ) {
        let cfg = ModelConfig::tiny();
        let model = Gpt2Model::synthetic(&cfg, 0x90DE1 ^ (seed % 4));
        let prompts: Vec<Vec<u32>> = (0..count)
            .map(|s| prompt_from(seed ^ (s as u64) << 7, 1 + (s + seed as usize) % 6, cfg.vocab))
            .collect();
        let mut arena = model.slot_arena(count, 16);
        let mut greedy = Sampler::greedy();

        // Batched: admit all, then decode together.
        let slots: Vec<usize> = prompts.iter().map(|_| arena.acquire().unwrap()).collect();
        let mut last: Vec<u32> = prompts
            .iter()
            .zip(&slots)
            .map(|(p, &slot)| {
                let logits = model.prefill_slot(&mut arena, slot, p);
                greedy.sample(&logits)
            })
            .collect();
        let mut batch_stream: Vec<Vec<u32>> = last.iter().map(|&t| vec![t]).collect();
        for _ in 0..steps {
            let entries: Vec<(usize, u32)> =
                slots.iter().copied().zip(last.iter().copied()).collect();
            let logits = model.forward_token_batch(&mut arena, &entries);
            for (s, row) in logits.iter().enumerate() {
                last[s] = greedy.sample(row);
                batch_stream[s].push(last[s]);
            }
        }

        // Lone references.
        for (s, p) in prompts.iter().enumerate() {
            let mut lone = model.clone();
            let expected = lone.generate(p, steps + 1, &mut Sampler::greedy());
            prop_assert_eq!(&batch_stream[s], &expected, "sequence {} diverged", s);
        }
    }
}
