//! Cross-crate functional integration tests: the distributed W8A8 pipeline
//! against the single-node reference, end-to-end through tokenizer, model,
//! partitioning and ring router.

use looplynx::core::engine::DistributedGpt2;
use looplynx::core::router::RingMode;
use looplynx::model::gpt2::Gpt2Model;
use looplynx::model::tokenizer::ByteTokenizer;
use looplynx::model::{Autoregressive, ModelConfig, Sampler};

fn reference() -> Gpt2Model {
    Gpt2Model::synthetic(&ModelConfig::tiny(), 0xC0FFEE)
}

#[test]
fn distributed_exact_generation_matches_reference_for_all_ring_sizes() {
    let model = reference();
    let prompt = [1u32, 2, 3, 4, 5, 6, 7, 8];
    let mut single = model.clone();
    let expected = single.generate(&prompt, 12, &mut Sampler::greedy());
    for nodes in [1usize, 2, 4] {
        let mut dist =
            DistributedGpt2::new(&model, nodes, RingMode::Exact).expect("tiny model partitions");
        let got = dist.generate(&prompt, 12, &mut Sampler::greedy());
        assert_eq!(got, expected, "{nodes}-node generation diverged");
    }
}

#[test]
fn distributed_exact_logits_are_bit_identical() {
    let model = reference();
    let mut single = model.clone();
    let mut dist = DistributedGpt2::new(&model, 4, RingMode::Exact).expect("partitions");
    let prompt = [10u32, 20, 30];
    let a = single.prefill(&prompt);
    let b = dist.prefill(&prompt);
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "partitioned prefill logits must be exact");
    assert_eq!(single.decode_step(40), dist.decode_step(40));
}

#[test]
fn quantized_ring_stays_numerically_close() {
    let model = reference();
    let mut single = model.clone();
    let mut dist = DistributedGpt2::new(&model, 2, RingMode::Quantized).expect("partitions");
    let prompt = [9u32, 8, 7, 6];
    let a = single.prefill(&prompt);
    let b = dist.prefill(&prompt);
    // int8 ring payloads perturb activations; logits must stay close in
    // scale relative to the logit spread
    let spread = a.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
        - a.iter().fold(f32::INFINITY, |m, &x| m.min(x));
    for (x, y) in a.iter().zip(&b) {
        assert!(
            (x - y).abs() < 0.35 * spread.max(1e-3),
            "quantized gather drifted: {x} vs {y} (spread {spread})"
        );
    }
}

#[test]
fn tokenizer_round_trips_through_generation() {
    let tok = ByteTokenizer::new();
    let mut model = reference();
    let prompt = tok.encode("Earth is the");
    assert!(prompt.iter().all(|&t| (t as usize) < model.config().vocab));
    let out = model.generate(&prompt, 6, &mut Sampler::greedy());
    assert_eq!(out.len(), 6);
    // decode must never panic, whatever bytes the model picked
    let _ = tok.decode(&out);
}

#[test]
fn kv_footprint_scales_inversely_with_ring_size() {
    let model = reference();
    let prompt = [1u32, 2, 3, 4];
    let mut sizes = Vec::new();
    for nodes in [1usize, 2, 4] {
        let mut dist = DistributedGpt2::new(&model, nodes, RingMode::Exact).expect("partitions");
        dist.prefill(&prompt);
        sizes.push(dist.node_kv_bytes(0));
    }
    assert_eq!(sizes[0], 2 * sizes[1], "2-node halves the footprint");
    assert_eq!(sizes[0], 4 * sizes[2], "4-node quarters the footprint");
}

#[test]
fn distributed_engine_rejects_bad_partitions() {
    let model = reference(); // 4 heads
    assert!(DistributedGpt2::new(&model, 3, RingMode::Exact).is_err());
    assert!(DistributedGpt2::new(&model, 8, RingMode::Exact).is_err());
}

#[test]
fn prefill_decode_boundary_is_seamless_distributed() {
    // prefill(p) + decode(q) must equal prefill(p ++ [q]) in exact mode
    let model = reference();
    let mut a = DistributedGpt2::new(&model, 2, RingMode::Exact).expect("partitions");
    let mut b = DistributedGpt2::new(&model, 2, RingMode::Exact).expect("partitions");
    a.prefill(&[1, 2, 3]);
    let logits_a = a.decode_step(4);
    let logits_b = b.prefill(&[1, 2, 3, 4]);
    assert_eq!(logits_a, logits_b);
}
