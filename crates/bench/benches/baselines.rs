//! Fig. 8 / Table II baseline bench: evaluates the comparator models
//! (A100, DFX-like temporal, spatial) and one Fig. 8 grid cell, printing
//! the simulated comparison (the paper's series) alongside Criterion's
//! measurement of the models themselves.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use looplynx_baselines::gpu::A100Model;
use looplynx_baselines::spatial::SpatialArch;
use looplynx_baselines::temporal::TemporalArch;
use looplynx_bench::experiments::fig8_with;
use looplynx_model::config::ModelConfig;

fn bench_baseline_models(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    let gpu = A100Model::paper_baseline();
    let dfx = TemporalArch::dfx_u280();
    let spatial = SpatialArch::u280();
    eprintln!(
        "[table2-baselines] DFX {:.2} ms | spatial {:.2} ms | A100 decode {:.2} ms",
        dfx.token_latency_ms(&model),
        spatial.decode_token_ms(&model),
        gpu.decode_token_ms(&model),
    );
    let mut group = c.benchmark_group("baseline_models");
    group.bench_function("a100_generation_32_512", |b| {
        b.iter(|| gpu.generation(black_box(&model), 32, 512))
    });
    group.bench_function("dfx_token_latency", |b| {
        b.iter(|| dfx.token_latency_ms(black_box(&model)))
    });
    group.bench_function("spatial_weighted_latency", |b| {
        b.iter(|| spatial.weighted_token_ms(black_box(&model), 128, 512))
    });
    group.finish();
}

fn bench_fig8_cell(c: &mut Criterion) {
    let model = ModelConfig::gpt2_medium();
    let data = fig8_with(&model, &[(32, 64)]);
    eprintln!(
        "[fig8-cell] [32:64] latency 1/2/4-node vs A100: {:.0} / {:.0} / {:.0} / {:.0} ms",
        data.cells[0].latency_ms[0],
        data.cells[0].latency_ms[1],
        data.cells[0].latency_ms[2],
        data.cells[0].latency_ms[3],
    );
    c.bench_function("fig8_cell_32_64", |b| {
        b.iter(|| fig8_with(black_box(&model), &[(32, 64)]))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_baseline_models, bench_fig8_cell
}
criterion_main!(benches);
