//! The shared autoregressive generation driver.
//!
//! Both functional engines — the single-node [`crate::gpt2::Gpt2Model`]
//! and the multi-node `DistributedGpt2` in `looplynx-core` — expose the
//! same prefill/decode surface, and both used to carry their own copy of
//! the `generate` loop. The copies drifted once already (the wasted
//! final-decode bug had to be fixed in each), so the loop now lives here
//! exactly once as a provided method of [`Autoregressive`].

use crate::sampler::Sampler;

/// A single-sequence autoregressive engine: prompt in, next-token logits
/// out, one token at a time.
///
/// Implementors supply the four primitive operations; the `generate`
/// driver is shared. (Batched multi-sequence execution is a different
/// surface — see the `InferenceBackend` trait in `looplynx-core`.)
pub trait Autoregressive {
    /// Processes the prompt, filling the KV cache, and returns the logits
    /// after the final prompt token.
    fn prefill(&mut self, prompt: &[u32]) -> Vec<f32>;

    /// Feeds one token and returns next-token logits.
    fn decode_step(&mut self, token: u32) -> Vec<f32>;

    /// Tokens currently in the KV cache.
    fn seq_len(&self) -> usize;

    /// Maximum sequence length the engine can hold.
    fn max_seq(&self) -> usize;

    /// Generates up to `n` tokens after prefilling `prompt`.
    ///
    /// Returns only the generated tokens. The final sampled token is not
    /// fed back through the model (its successor's logits would be
    /// discarded — one wasted forward pass per call), so after a full
    /// generation [`Autoregressive::seq_len`] is `prompt.len() + n - 1`
    /// and the final token is absent from the KV cache. To continue a
    /// conversation, start the next call's prompt with the previous
    /// call's final output token so prefill appends it before any new
    /// text. The returned vector is shorter than `n` when the KV cache
    /// reaches [`Autoregressive::max_seq`] (no further token can be
    /// forwarded).
    fn generate(&mut self, prompt: &[u32], n: usize, sampler: &mut Sampler) -> Vec<u32> {
        let mut logits = self.prefill(prompt);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let next = sampler.sample(&logits);
            out.push(next);
            if i + 1 == n || self.seq_len() >= self.max_seq() {
                break;
            }
            logits = self.decode_step(next);
        }
        out
    }
}
