//! A persistent per-node worker pool.
//!
//! The functional engine's data-parallel sections (one closure per ring
//! node between two synchronizations) used to run under
//! `std::thread::scope`, which spawns and joins one OS thread per node
//! *per section* — a cost paid `layers × stages` times per token. The
//! [`WorkerPool`] replaces that with long-lived threads created once per
//! engine: each section sends one job per worker over a channel and
//! blocks until every worker has answered, collecting results in worker
//! order so downstream ring gathers see shards in exactly the order the
//! scoped-thread implementation produced (bit-identical results).
//!
//! Jobs may borrow the caller's stack (the node states, the shared
//! activation buffers): [`WorkerPool::run`] erases the borrow lifetime to
//! ship the closure to a long-lived thread, which is sound because it
//! never returns — not even by panic — before every dispatched job has
//! reported back. A panicking job is caught on the worker (keeping the
//! thread alive), carried home through the result channel, and re-thrown
//! on the caller after all workers have finished, matching
//! `thread::scope` semantics.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A type-erased unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A job dispatched through [`WorkerPool::try_run`] panicked.
///
/// The worker thread itself survives (panics are caught on the worker),
/// so the pool remains fully serviceable — this is the recoverable
/// surface the serving stack's fault tolerance is built on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the first job (= node) that panicked.
    pub job: usize,
    /// Rendered panic payload (best effort).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// A fixed set of long-lived worker threads, one per ring node.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

struct Worker {
    tx: Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads that live until the pool is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a thread cannot be spawned.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        let workers = (0..workers)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("looplynx-node-{i}"))
                    .spawn(move || {
                        // Exits when the pool drops its sender.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    // lint: allow(panic_free) — documented `# Panics` construction contract; pools are built at startup, not per request
                    .expect("spawn pool worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs one job per worker concurrently (job `i` on worker `i`) and
    /// returns their results in job order. Blocks until every job has
    /// completed; if any job panicked, the panic is re-thrown here *after*
    /// all jobs finished (so no job ever outlives the borrows it captured).
    ///
    /// # Panics
    ///
    /// Panics if more jobs are supplied than workers exist, or re-throws
    /// the first job panic.
    pub fn run<'env, T, I>(&self, jobs: I) -> Vec<T>
    where
        T: Send + 'env,
        I: IntoIterator<Item = Box<dyn FnOnce() -> T + Send + 'env>>,
    {
        self.run_raw(jobs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    }

    /// Like [`WorkerPool::run`], but a panicking job becomes an `Err`
    /// instead of re-throwing: the first panic (in job order) is reported
    /// and the pool — whose threads catch panics and live on — stays
    /// usable. Every dispatched job still completes before this returns,
    /// so the borrow-safety argument of `run` is unchanged.
    ///
    /// # Errors
    ///
    /// [`JobPanic`] naming the first panicked job.
    ///
    /// # Panics
    ///
    /// Panics if more jobs are supplied than workers exist.
    pub fn try_run<'env, T, I>(&self, jobs: I) -> Result<Vec<T>, JobPanic>
    where
        T: Send + 'env,
        I: IntoIterator<Item = Box<dyn FnOnce() -> T + Send + 'env>>,
    {
        let mut out = Vec::new();
        for (job, result) in self.run_raw(jobs).into_iter().enumerate() {
            match result {
                Ok(v) => out.push(v),
                Err(payload) => {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    return Err(JobPanic { job, message });
                }
            }
        }
        Ok(out)
    }

    /// Dispatches one job per worker and joins them all, returning each
    /// job's caught outcome in job order.
    fn run_raw<'env, T, I>(&self, jobs: I) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'env,
        I: IntoIterator<Item = Box<dyn FnOnce() -> T + Send + 'env>>,
    {
        // Drain the caller's iterator BEFORE dispatching anything: user
        // code inside the iterator may panic, and once a single job is in
        // flight an unwind past this frame would free the borrows that
        // job captured. After this point, no caller-supplied code runs on
        // this thread until the recv barrier below has joined every job.
        let jobs: Vec<_> = jobs.into_iter().collect();
        assert!(
            jobs.len() <= self.workers.len(),
            "more jobs than pool workers"
        );
        let mut receivers: Vec<Receiver<std::thread::Result<T>>> = Vec::new();
        let mut worker_died = false;
        for (worker, job) in self.workers.iter().zip(jobs) {
            let (rtx, rrx) = channel();
            let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                // The receiver lives on our stack until we drained it; a
                // send can only fail if the caller itself is unwinding.
                let _ = rtx.send(result);
            });
            let task: Job = {
                // SAFETY: `run` does not return (normally or by panic)
                // before every receiver below has yielded, so the job —
                // and every borrow of 'env it captures — is finished by
                // the time the caller's frame can be torn down. Nothing
                // between here and the barrier can unwind: dispatch is
                // channel sends and Vec pushes only (allocation failure
                // aborts, not unwinds).
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(task) }
            };
            if worker.tx.send(task).is_err() {
                // Worker thread died (it only exits when the pool drops);
                // drain what we dispatched, then report.
                worker_died = true;
                break;
            }
            receivers.push(rrx);
        }
        // Barrier: every dispatched job completes before anything below
        // can unwind out of this function.
        let results: Vec<std::thread::Result<T>> = receivers
            .into_iter()
            .map(|rx| {
                rx.recv().unwrap_or_else(|_| {
                    // The worker dropped its result sender without
                    // answering — it died mid-job (and dropped the job,
                    // releasing its borrows). Surface that as a job
                    // panic: `try_run` reports it, `run` re-throws it.
                    let payload: Box<dyn std::any::Any + Send> =
                        Box::new("pool worker died mid-job".to_string());
                    Err(payload)
                })
            })
            .collect();
        assert!(!worker_died, "pool worker died before dispatch");
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every channel first so all workers see the hang-up...
        for w in &mut self.workers {
            let (dead_tx, _) = channel();
            drop(std::mem::replace(&mut w.tx, dead_tx));
        }
        // ...then join them.
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Cloning an engine must not share worker threads: a clone gets a fresh
/// pool of the same size.
impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        WorkerPool::new(self.workers.len())
    }
}

/// Pools carry no semantic state; two pools are interchangeable when they
/// have the same parallelism.
impl PartialEq for WorkerPool {
    fn eq(&self, other: &Self) -> bool {
        self.workers.len() == other.workers.len()
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let out = pool.run((0..4).map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * 10);
                job
            }));
            assert_eq!(out, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn jobs_may_borrow_and_mutate_caller_state() {
        let pool = WorkerPool::new(3);
        let mut cells = [0u64, 0, 0];
        let shared = 7u64;
        pool.run(cells.iter_mut().enumerate().map(|(i, c)| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                *c = i as u64 + shared;
            });
            job
        }));
        assert_eq!(cells, [7, 8, 9]);
    }

    #[test]
    fn fewer_jobs_than_workers_is_fine() {
        let pool = WorkerPool::new(4);
        let out = pool.run((0..2).map(|i| {
            let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i);
            job
        }));
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..2).map(|i| {
                let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || {
                    assert!(i != 1, "job {i} exploded");
                    i
                });
                job
            }));
        }));
        assert!(attempt.is_err(), "panic must propagate");
        // The worker that caught the panic is still serving jobs.
        let out = pool.run((0..2).map(|i| {
            let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i + 100);
            job
        }));
        assert_eq!(out, vec![100, 101]);
    }

    #[test]
    fn panicking_job_iterator_dispatches_nothing() {
        // The jobs iterator is caller code and may panic; `run` must not
        // have any job in flight when that unwind escapes (the borrows a
        // dispatched job captures would dangle). The iterator is drained
        // before dispatch, so the early job must never have started.
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = WorkerPool::new(2);
        let ran = AtomicBool::new(false);
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..2).map(|i| {
                assert!(i == 0, "iterator exploded");
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                    ran.store(true, Ordering::SeqCst);
                });
                job
            }));
        }));
        assert!(attempt.is_err(), "iterator panic must propagate");
        assert!(!ran.load(Ordering::SeqCst), "job dispatched before drain");
        // pool still serves jobs afterwards
        let out = pool.run((0..2).map(|i| {
            let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i);
            job
        }));
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn try_run_reports_panic_as_error_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run((0..2).map(|i| {
                let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || {
                    assert!(i != 1, "job {i} exploded");
                    i
                });
                job
            }))
            .unwrap_err();
        assert_eq!(err.job, 1);
        assert!(err.message.contains("exploded"), "message: {}", err.message);
        // All threads caught their panics and keep serving.
        let out = pool
            .try_run((0..2).map(|i| {
                let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i + 7);
                job
            }))
            .unwrap();
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "more jobs than pool workers")]
    fn overflow_is_rejected() {
        let pool = WorkerPool::new(1);
        let _ = pool.run((0..2).map(|i| {
            let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i);
            job
        }));
    }

    #[test]
    fn clone_makes_an_independent_pool() {
        let a = WorkerPool::new(2);
        let b = a.clone();
        assert_eq!(a, b);
        drop(a);
        let out = b.run((0..2).map(|i| {
            let job: Box<dyn FnOnce() -> i32 + Send> = Box::new(move || i);
            job
        }));
        assert_eq!(out, vec![0, 1]);
    }
}
