// Negative fixture for `panic_free`: every construct below must fire
// when linted as a serving-path file.

fn offenders(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("must exist");
    if a == 0 {
        panic!("boom");
    }
    if b == 1 {
        todo!();
    }
    unimplemented!("later")
}
