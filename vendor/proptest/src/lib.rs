//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the real API this workspace uses, with the
//! same surface syntax:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments, and `#[test]` attributes on each property);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_filter`,
//!   implemented for numeric ranges and tuples;
//! * [`arbitrary::any`], [`collection::vec`], [`sample::select`],
//!   [`strategy::Just`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Each property runs over `cases` pseudo-random inputs seeded from the
//! test's module path and name (stable run-to-run). Failures report the
//! failing assertion **without shrinking**.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the real crate's `prop` re-export module, so
/// `prop::collection::vec` and `prop::sample::select` resolve.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Supports the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0i8..5, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample_one(&($strat), __rng)?;)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (without panicking the sampling loop) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::CaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::CaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return Err($crate::test_runner::CaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&($left), &($right));
        if !(*__l == *__r) {
            return Err($crate::test_runner::CaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&($left), &($right));
        if *__l == *__r {
            return Err($crate::test_runner::CaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects (skips and resamples) the current case when the condition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::CaseError::reject(stringify!($cond)));
        }
    };
}
